#pragma once
/// \file scenario_catalog.hpp
/// Declarative scenario API: a catalog of named, documented workload
/// scenarios (the paper's single-cell evaluation plus the stress scenarios
/// the examples explore) and a fluent SimulationBuilder that composes a
/// catalog entry with per-run overrides into a validated SimulationConfig.
///
/// Typical use:
///
///     const sim::Metrics m = sim::SimulationBuilder::scenario("highway")
///                                .requests(200)
///                                .seed(7)
///                                .policy("guard:8")
///                                .run();
///
/// Scenario names are listed by `facs_cli --list-scenarios` or
/// `ScenarioCatalog::global().describeAll()`.

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"

namespace facs::sim {

/// Raised for an unknown scenario name.
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& message)
      : std::runtime_error(message) {}
};

/// A named, documented simulation setup.
struct ScenarioSpec {
  std::string name;     ///< Catalog key, e.g. "urban-walkers".
  std::string summary;  ///< One line for --list-scenarios.
  SimulationConfig config;
};

/// The read-only catalog of built-in scenarios:
///
///   paper-single-cell     the paper's Section 4 evaluation cell
///   urban-walkers         pedestrian-heavy downtown micro-cell cluster
///   highway               7 micro-cells over a fast corridor, handoffs on
///   stadium-burst         flash crowd over 7 cells, Poisson, steady state
///   poisson-steady-state  the paper's cell driven to steady state
///
/// describeAll() annotates each entry with its cell count and default
/// shard count, so --list-scenarios shows where sharding pays off.
class ScenarioCatalog {
 public:
  [[nodiscard]] static const ScenarioCatalog& global();

  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  /// Sorted names of every catalogued scenario.
  [[nodiscard]] std::vector<std::string> names() const;
  /// \throws ScenarioError when \p name is not catalogued.
  [[nodiscard]] const ScenarioSpec& at(std::string_view name) const;
  /// Multi-line human-readable dump of every entry (--list-scenarios).
  [[nodiscard]] std::string describeAll() const;

 private:
  ScenarioCatalog();
  std::map<std::string, ScenarioSpec, std::less<>> entries_;
};

/// Fluent composition of a scenario base with per-run overrides. Every
/// setter returns *this, so calls chain; build() validates the final
/// configuration, and run() executes it with the selected policy.
class SimulationBuilder {
 public:
  /// Starts from the paper's defaults (equivalent to "paper-single-cell").
  SimulationBuilder() = default;
  /// Starts from an existing configuration.
  explicit SimulationBuilder(SimulationConfig base)
      : config_{std::move(base)} {}
  /// Starts from a catalogued scenario. \throws ScenarioError when unknown.
  [[nodiscard]] static SimulationBuilder scenario(std::string_view name);

  /// \name Run shape
  ///@{
  SimulationBuilder& requests(int n);
  SimulationBuilder& arrivalWindow(double seconds);
  SimulationBuilder& poissonArrivals(bool on = true);
  SimulationBuilder& warmup(double seconds);
  SimulationBuilder& seed(std::uint64_t seed);
  ///@}

  /// \name Network shape
  ///@{
  SimulationBuilder& rings(int rings);
  SimulationBuilder& cellRadiusKm(double km);
  SimulationBuilder& capacityBu(cellular::BandwidthUnits bu);
  SimulationBuilder& handoffs(bool on = true);
  SimulationBuilder& mobilityUpdate(double seconds);
  /// Worker shards for the run (1 = serial; results are bit-identical for
  /// any value — shards only change how much local work runs concurrently).
  SimulationBuilder& shards(int n);
  /// Hoist snapshot-only policy work (FACS: FLC1) off the serialized commit
  /// path (default on; results are bit-identical either way).
  SimulationBuilder& precomputeCv(bool on = true);
  ///@}

  /// \name User population
  ///@{
  SimulationBuilder& speedKmh(double lo, double hi);
  SimulationBuilder& angleDeg(double mean, double sigma);
  SimulationBuilder& distanceKm(double lo, double hi);
  SimulationBuilder& trackingWindow(double seconds);
  SimulationBuilder& gpsErrorM(double metres);
  SimulationBuilder& noGps();
  SimulationBuilder& trafficMix(const cellular::TrafficMix& mix);
  SimulationBuilder& scenarioParams(const ScenarioParams& params);
  ///@}

  /// Selects the admission policy by registry spec (default "facs").
  /// Validated eagerly: \throws cellular::PolicySpecError on a bad spec.
  SimulationBuilder& policy(std::string_view spec);

  /// The composed configuration without validation (for inspection).
  [[nodiscard]] const SimulationConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::string& policySpec() const noexcept {
    return policy_spec_;
  }

  /// The composed, validated configuration.
  /// \throws std::invalid_argument on a nonsensical combination.
  [[nodiscard]] SimulationConfig build() const;

  /// Controller factory for the selected policy spec.
  [[nodiscard]] ControllerFactory factory() const;

  /// build() + factory() + runSimulation in one call.
  [[nodiscard]] Metrics run() const;

 private:
  SimulationConfig config_{};
  std::string policy_spec_ = "facs";
};

}  // namespace facs::sim
