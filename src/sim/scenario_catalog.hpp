#pragma once
/// \file scenario_catalog.hpp
/// Declarative scenario API: a catalog of named, documented workload
/// scenarios (the paper's single-cell evaluation plus the stress scenarios
/// the examples explore) and a fluent SimulationBuilder that composes a
/// catalog entry with per-run overrides into a validated SimulationConfig.
///
/// Typical use:
///
///     const sim::Metrics m = sim::SimulationBuilder::scenario("highway")
///                                .requests(200)
///                                .seed(7)
///                                .policy("guard:8")
///                                .run();
///
/// Scenario names are listed by `facs_cli --list-scenarios` or
/// `ScenarioCatalog::builtins().describeAll()`. Policies resolve through a
/// `cellular::PolicyRuntime` (default: the shared default runtime); pass a
/// custom runtime with `.runtime(rt)` to use `registerExternal()` policies.

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"

namespace facs::sim {

/// Raised for an unknown scenario name or a malformed catalog addition.
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& message)
      : std::runtime_error(message) {}
};

/// A named, documented simulation setup.
struct ScenarioSpec {
  std::string name;     ///< Catalog key, e.g. "urban-walkers".
  std::string summary;  ///< One line for --list-scenarios.
  /// Default admission policy for the scenario, as a registry spec. A run
  /// may still override it (--policy, SimulationBuilder::policy()).
  std::string policy = "facs";
  SimulationConfig config;
};

/// A catalog of named scenarios. Every catalog starts from the built-in
/// set:
///
///   paper-single-cell     the paper's Section 4 evaluation cell
///   urban-walkers         pedestrian-heavy downtown micro-cell cluster
///   highway               7 micro-cells over a fast corridor, handoffs on
///   stadium-burst         flash crowd over 7 cells, Poisson, steady state
///   poisson-steady-state  the paper's cell driven to steady state
///
/// and is instance-scoped: add() (or addFile(), which parses a scenario
/// file — see sim/scenario_file.hpp) extends THIS catalog only, so
/// embedders can curate per-run scenario sets the way PolicyRuntime scopes
/// policies. builtins() is the shared read-only seed instance.
///
/// describeAll() annotates each entry with its cell count and default
/// shard count, so --list-scenarios shows where sharding pays off.
class ScenarioCatalog {
 public:
  /// A fresh catalog holding exactly the built-in scenarios.
  ScenarioCatalog();

  /// The shared, never-extended instance of the built-in set.
  [[nodiscard]] static const ScenarioCatalog& builtins();

  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  /// Sorted names of every catalogued scenario.
  [[nodiscard]] std::vector<std::string> names() const;
  /// \throws ScenarioError when \p name is not catalogued.
  [[nodiscard]] const ScenarioSpec& at(std::string_view name) const;
  /// Multi-line human-readable dump of every entry (--list-scenarios).
  [[nodiscard]] std::string describeAll() const;

  /// Adds a scenario to this catalog.
  /// \throws ScenarioError on an empty or duplicate name.
  void add(ScenarioSpec spec);

  /// Parses the scenario file at \p path (validating its policy spec
  /// against \p runtime) and adds it. Returns the catalogued entry.
  /// \throws ScenarioFileError on parse problems, ScenarioError on a
  ///         duplicate name.
  const ScenarioSpec& addFile(const std::string& path,
                              const cellular::PolicyRuntime& runtime);

 private:
  std::map<std::string, ScenarioSpec, std::less<>> entries_;
};

/// Fluent composition of a scenario base with per-run overrides. Every
/// setter returns *this, so calls chain; build() validates the final
/// configuration, and run() executes it with the selected policy.
class SimulationBuilder {
 public:
  /// Starts from the paper's defaults (equivalent to "paper-single-cell").
  SimulationBuilder() = default;
  /// Starts from an existing configuration.
  explicit SimulationBuilder(SimulationConfig base)
      : config_{std::move(base)} {}
  /// Starts from a full scenario spec (config AND its default policy) —
  /// e.g. one parsed from a scenario file. The spec's policy is adopted
  /// verbatim (it was validated when the spec was built); .policy()
  /// still overrides it.
  explicit SimulationBuilder(const ScenarioSpec& spec)
      : config_{spec.config}, policy_spec_{spec.policy} {}
  /// Starts from a built-in scenario. \throws ScenarioError when unknown.
  [[nodiscard]] static SimulationBuilder scenario(std::string_view name);
  /// Starts from a scenario of \p catalog (which may hold file-loaded
  /// entries). \throws ScenarioError when unknown.
  [[nodiscard]] static SimulationBuilder scenario(std::string_view name,
                                                  const ScenarioCatalog& catalog);

  /// Resolves policy specs through \p rt instead of the shared default
  /// runtime — the hook for registerExternal() policies. Set it BEFORE
  /// .policy(): specs are validated eagerly against the current runtime.
  /// The runtime must outlive the builder and its factory().
  SimulationBuilder& runtime(const cellular::PolicyRuntime& rt);

  /// \name Run shape
  ///@{
  SimulationBuilder& requests(int n);
  SimulationBuilder& arrivalWindow(double seconds);
  SimulationBuilder& poissonArrivals(bool on = true);
  SimulationBuilder& warmup(double seconds);
  SimulationBuilder& seed(std::uint64_t seed);
  ///@}

  /// \name Network shape
  ///@{
  SimulationBuilder& rings(int rings);
  SimulationBuilder& cellRadiusKm(double km);
  SimulationBuilder& capacityBu(cellular::BandwidthUnits bu);
  SimulationBuilder& handoffs(bool on = true);
  SimulationBuilder& mobilityUpdate(double seconds);
  /// Worker shards for the run (1 = serial; results are bit-identical for
  /// any value — shards only change how much local work runs concurrently).
  SimulationBuilder& shards(int n);
  /// Hoist snapshot-only policy work (FACS: FLC1) off the serialized commit
  /// path (default on; results are bit-identical either way).
  SimulationBuilder& precomputeCv(bool on = true);
  /// Commit lanes for the two-level commit scheme (1 = the serialized
  /// commit phase; N > 1 needs a CommitScope::CellLocal policy — see
  /// SimulationConfig::commit_groups).
  SimulationBuilder& commitGroups(int n);
  /// How cells map onto commit lanes (contiguous by id, or weighted by
  /// expected spawn load — see SimulationConfig::partition).
  SimulationBuilder& partition(PartitionStrategy strategy);
  /// Weighted partition only: re-draw the lane boundaries from observed
  /// load every this-many simulated seconds (0 = never; see
  /// SimulationConfig::repartition_every_s).
  SimulationBuilder& repartitionEvery(double seconds);
  /// Per-cell capacity override (heterogeneous deployments); repeatable.
  SimulationBuilder& cellCapacityBu(cellular::CellId cell,
                                    cellular::BandwidthUnits bu);
  /// Per-cell relative arrival weight (hotspot modelling; default 1).
  SimulationBuilder& cellArrivalScale(cellular::CellId cell, double scale);
  /// Per-cell service mix replacing the population-wide one.
  SimulationBuilder& cellTrafficMix(cellular::CellId cell,
                                    const cellular::TrafficMix& mix);
  /// Decide with AdmissionContext::explain set (rationales filled and
  /// truncations counted in Metrics::truncated_rationales; decisions are
  /// identical either way).
  SimulationBuilder& explain(bool on = true);
  ///@}

  /// \name User population
  ///@{
  SimulationBuilder& speedKmh(double lo, double hi);
  SimulationBuilder& angleDeg(double mean, double sigma);
  SimulationBuilder& distanceKm(double lo, double hi);
  SimulationBuilder& trackingWindow(double seconds);
  SimulationBuilder& gpsErrorM(double metres);
  SimulationBuilder& noGps();
  SimulationBuilder& trafficMix(const cellular::TrafficMix& mix);
  SimulationBuilder& scenarioParams(const ScenarioParams& params);
  ///@}

  /// Selects the admission policy by registry spec (default "facs").
  /// Validated eagerly: \throws cellular::PolicySpecError on a bad spec.
  SimulationBuilder& policy(std::string_view spec);

  /// The composed configuration without validation (for inspection).
  [[nodiscard]] const SimulationConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::string& policySpec() const noexcept {
    return policy_spec_;
  }

  /// The composed, validated configuration.
  /// \throws std::invalid_argument on a nonsensical combination.
  [[nodiscard]] SimulationConfig build() const;

  /// Controller factory for the selected policy spec.
  [[nodiscard]] ControllerFactory factory() const;

  /// build() + factory() + runSimulation in one call.
  [[nodiscard]] Metrics run() const;

 private:
  [[nodiscard]] const cellular::PolicyRuntime& runtimeOrDefault() const;
  [[nodiscard]] CellOverride& overrideFor(cellular::CellId cell);

  SimulationConfig config_{};
  std::string policy_spec_ = "facs";
  /// Null = the shared default runtime (resolved lazily, so a builder is
  /// still cheap to default-construct).
  const cellular::PolicyRuntime* runtime_ = nullptr;
};

}  // namespace facs::sim
