#include "sim/workload.hpp"

#include <cmath>
#include <stdexcept>

namespace facs::sim {

using cellular::normalizeAngleDeg;
using cellular::Vec2;

RequestPlan drawRequest(const ScenarioParams& scenario, Vec2 station_center,
                        cellular::CellId target_cell, Rng& rng) {
  if (scenario.speed_max_kmh < scenario.speed_min_kmh ||
      scenario.distance_max_km < scenario.distance_min_km) {
    throw std::invalid_argument("scenario ranges are inverted");
  }

  RequestPlan plan;
  plan.target_cell = target_cell;
  plan.service = scenario.mix.sample(rng);

  const double distance_km =
      scenario.distance_min_km == scenario.distance_max_km
          ? scenario.distance_min_km
          : sampleUniform(rng, scenario.distance_min_km,
                          scenario.distance_max_km);
  const double azimuth_deg = sampleUniform(rng, -180.0, 180.0);
  plan.initial.position_km =
      station_center + cellular::headingVector(azimuth_deg) * distance_km;

  plan.initial.speed_kmh =
      scenario.speed_min_kmh == scenario.speed_max_kmh
          ? scenario.speed_min_kmh
          : sampleUniform(rng, scenario.speed_min_kmh, scenario.speed_max_kmh);

  const double bearing_to_bs =
      cellular::bearingDeg(plan.initial.position_km, station_center);
  const double deviation_deg =
      scenario.angle_sigma_deg == 0.0
          ? scenario.angle_mean_deg
          : sampleNormal(rng, scenario.angle_mean_deg,
                         scenario.angle_sigma_deg);
  plan.initial.heading_deg = normalizeAngleDeg(bearing_to_bs + deviation_deg);
  return plan;
}

ScenarioParams fig7Scenario(double speed_kmh) {
  ScenarioParams s;
  s.speed_min_kmh = speed_kmh;
  s.speed_max_kmh = speed_kmh;
  s.angle_mean_deg = 0.0;
  s.angle_sigma_deg = 15.0;
  s.tracking_window_s = 30.0;
  return s;
}

ScenarioParams fig8Scenario(double angle_deg) {
  ScenarioParams s;
  s.angle_mean_deg = angle_deg;
  s.angle_sigma_deg = 0.0;       // the figure fixes the angle exactly
  s.tracking_window_s = 0.0;     // measure at request time, no drift
  s.gps_error_m.reset();         // isolate the angle effect from GPS noise
  return s;
}

ScenarioParams fig9Scenario(double distance_km) {
  ScenarioParams s;
  s.distance_min_km = distance_km;
  s.distance_max_km = distance_km;
  s.tracking_window_s = 0.0;     // keep the user at the stated distance
  s.gps_error_m.reset();
  return s;
}

ScenarioParams fig10Scenario() {
  ScenarioParams s;
  // Section 4 sweeps "the user direction ... from -180 degree to +180
  // degree": the comparison population spreads over the whole range, which
  // is what gives FACS something to be selective about under load.
  s.angle_sigma_deg = 75.0;
  return s;
}

}  // namespace facs::sim
