#include "sim/scenario_file.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

namespace facs::sim {

namespace {

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

/// Cuts an end-of-line comment, honouring quotes so a '#' inside a summary
/// string survives. Tracks escape state explicitly (not just the previous
/// byte) so a string ending in an escaped backslash — `"...\\"` — still
/// closes its quote.
std::string_view stripComment(std::string_view line) noexcept {
  bool quoted = false;
  bool escaped = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (escaped) {
      escaped = false;
    } else if (quoted && c == '\\') {
      escaped = true;
    } else if (c == '"') {
      quoted = !quoted;
    } else if (c == '#' && !quoted) {
      return line.substr(0, i);
    }
  }
  return line;
}

/// Quotes a string for the line-oriented format: backslash escapes for
/// the quote, the backslash itself and line breaks (which would otherwise
/// split the value across lines and break parse(write(s)) == s).
std::string quote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

/// Parses one scenario document; one instance per parse call.
class Parser {
 public:
  Parser(std::string_view source, const cellular::PolicyRuntime& runtime,
         const ScenarioBaseResolver& resolve_base)
      : source_{source}, runtime_{runtime}, resolve_base_{resolve_base} {}

  ScenarioSpec run(std::string_view text) {
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t eol = text.find('\n', pos);
      const std::string_view raw =
          text.substr(pos, eol == std::string_view::npos ? eol : eol - pos);
      ++line_;
      handleLine(trim(stripComment(raw)));
      if (eol == std::string_view::npos) break;
      pos = eol + 1;
    }
    finishCellSection();
    finishAtSection();
    if (spec_.name.empty()) {
      throw ScenarioFileError(source_, 0,
                              "missing [scenario] name = \"...\" entry");
    }
    try {
      validateConfig(spec_.config);
    } catch (const std::invalid_argument& e) {
      throw ScenarioFileError(source_, 0, e.what());
    }
    return std::move(spec_);
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ScenarioFileError(source_, line_, message);
  }

  void handleLine(std::string_view line) {
    if (line.empty()) return;
    if (line.front() == '[') {
      if (line.back() != ']') fail("unterminated section header");
      startSection(trim(line.substr(1, line.size() - 2)));
      return;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail("expected 'key = value' or a [section] header, got '" +
           std::string{line} + "'");
    }
    const std::string key{trim(line.substr(0, eq))};
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) fail("empty key");
    if (value.empty()) fail("key '" + key + "' has no value");
    if (section_.empty()) {
      fail("key '" + key + "' before any [section] header");
    }
    // Per-section duplicate-key tracking; each [cell N] is its own scope,
    // and each [at T] section (repeatable, even at one instant) likewise.
    const std::string scope =
        section_ == "cell" ? "cell " + std::to_string(cell_id_)
        : section_ == "at" ? "at#" + std::to_string(at_index_)
                           : section_;
    if (!seen_.insert(scope + "." + key).second) {
      fail("duplicate key '" + key + "' in [" + scope + "]");
    }
    dispatch(key, value);
    // Anything after the first key forecloses `extends`: the base would
    // overwrite what the file already set.
    extends_allowed_ = false;
  }

  void startSection(std::string_view name) {
    finishCellSection();
    finishAtSection();
    if (name == "scenario" || name == "network" || name == "run" ||
        name == "population" || name == "turn") {
      if (!sections_.insert(std::string{name}).second) {
        fail("duplicate section [" + std::string{name} + "]");
      }
      section_ = std::string{name};
      if (name != "scenario") extends_allowed_ = false;
      return;
    }
    if (name.substr(0, 5) == "cell " || name == "cell") {
      const std::string_view id_text = trim(name.substr(4));
      if (id_text.empty()) fail("[cell] needs an id: [cell N]");
      const std::uint64_t id = parseUnsigned(id_text, "cell id");
      if (id > std::numeric_limits<cellular::CellId>::max()) {
        fail("cell id " + std::string{id_text} + " out of range");
      }
      cell_id_ = static_cast<cellular::CellId>(id);
      // One section per cell PER FILE; a base's entry (via extends) is
      // replaced wholesale — the derived file re-describes that cell.
      if (!file_cells_.insert(cell_id_).second) {
        fail("duplicate cell id " + std::to_string(cell_id_) +
             " (a [cell N] section per cell)");
      }
      cell_index_ = spec_.config.cell_overrides.size();
      for (std::size_t i = 0; i < spec_.config.cell_overrides.size(); ++i) {
        if (spec_.config.cell_overrides[i].cell == cell_id_) {
          cell_index_ = i;
          spec_.config.cell_overrides[i] = CellOverride{cell_id_, {}, {}, {}};
          break;
        }
      }
      if (cell_index_ == spec_.config.cell_overrides.size()) {
        spec_.config.cell_overrides.push_back(CellOverride{cell_id_, {}, {}, {}});
      }
      section_ = "cell";
      extends_allowed_ = false;
      cell_header_line_ = line_;
      cell_key_seen_ = false;
      return;
    }
    if (name.substr(0, 3) == "at " || name == "at") {
      const std::string_view t_text = trim(name.substr(2));
      if (t_text.empty()) fail("[at] needs a time: [at T]");
      const double t = parseNumber(t_text, "at time");
      // Append order is file order; under extends the base's mutations are
      // already in the vector, so the derived file's sections come after —
      // the documented equal-timestamp tie-break.
      spec_.config.mutations.push_back(serve::ScenarioMutation{});
      spec_.config.mutations.back().at_s = t;
      at_index_ = spec_.config.mutations.size() - 1;
      section_ = "at";
      extends_allowed_ = false;
      at_header_line_ = line_;
      at_action_seen_ = false;
      return;
    }
    fail("unknown section [" + std::string{name} +
         "] (scenario|network|cell N|run|population|turn|at T)");
  }

  /// A [cell N] section must actually set something — an empty one is a
  /// typo, not a no-op.
  void finishCellSection() {
    if (section_ == "cell" && !cell_key_seen_) {
      throw ScenarioFileError(
          source_, cell_header_line_,
          "[cell " + std::to_string(cell_id_) +
              "] sets no keys (capacity_bu|arrival_scale|mix)");
    }
  }

  /// An [at T] section must name exactly one action; validateMutation
  /// rejects doubled actions as they dispatch, and this catches zero.
  void finishAtSection() {
    if (section_ == "at" && !at_action_seen_) {
      throw ScenarioFileError(
          source_, at_header_line_,
          "[at] section sets no action (arrival_scale|outage|restore|mix)");
    }
  }

  void dispatch(const std::string& key, std::string_view value) {
    SimulationConfig& cfg = spec_.config;
    ScenarioParams& pop = cfg.scenario;
    if (section_ == "scenario") {
      if (key == "extends") {
        applyExtends(parseString(value, key));
      } else if (key == "name") {
        spec_.name = parseString(value, key);
        if (spec_.name.empty()) fail("name must not be empty");
      } else if (key == "summary") {
        spec_.summary = parseString(value, key);
      } else if (key == "policy") {
        spec_.policy = parseString(value, key);
        try {
          (void)runtime_.makeFactory(spec_.policy);
        } catch (const cellular::PolicySpecError& e) {
          fail(e.what());
        }
      } else {
        unknownKey(key, "extends|name|summary|policy");
      }
    } else if (section_ == "network") {
      if (key == "rings") {
        cfg.rings = parseInt(value, key);
      } else if (key == "cell_radius_km") {
        cfg.cell_radius_km = parseNumber(value, key);
      } else if (key == "capacity_bu") {
        cfg.capacity_bu = parseInt(value, key);
      } else if (key == "handoffs") {
        cfg.enable_handoffs = parseBool(value, key);
      } else if (key == "mobility_update_s") {
        cfg.mobility_update_s = parseNumber(value, key);
      } else {
        unknownKey(key,
                   "rings|cell_radius_km|capacity_bu|handoffs|"
                   "mobility_update_s");
      }
    } else if (section_ == "cell") {
      CellOverride& entry = cfg.cell_overrides[cell_index_];
      if (key == "capacity_bu") {
        entry.capacity_bu = parseInt(value, key);
        cell_key_seen_ = true;
      } else if (key == "arrival_scale") {
        entry.arrival_scale = parseNumber(value, key);
        cell_key_seen_ = true;
      } else if (key == "mix") {
        const std::vector<double> f = parseList(value, key, 3);
        try {
          entry.mix = cellular::TrafficMix{f[0], f[1], f[2]};
        } catch (const std::invalid_argument& e) {
          fail(e.what());
        }
        cell_key_seen_ = true;
      } else {
        unknownKey(key, "capacity_bu|arrival_scale|mix");
      }
    } else if (section_ == "run") {
      if (key == "requests") {
        cfg.total_requests = parseInt(value, key);
      } else if (key == "window_s") {
        cfg.arrival_window_s = parseNumber(value, key);
      } else if (key == "arrivals") {
        const std::string kind = parseString(value, key);
        if (kind == "uniform") {
          cfg.arrivals = ArrivalProcess::UniformBurst;
        } else if (kind == "poisson") {
          cfg.arrivals = ArrivalProcess::Poisson;
        } else {
          fail("arrivals must be \"uniform\" or \"poisson\", got \"" + kind +
               "\"");
        }
      } else if (key == "warmup_s") {
        cfg.warmup_s = parseNumber(value, key);
      } else if (key == "seed") {
        cfg.seed = parseUnsigned(value, key);
      } else if (key == "shards") {
        cfg.shards = parseInt(value, key);
      } else if (key == "commit_groups") {
        cfg.commit_groups = parseInt(value, key);
      } else if (key == "partition") {
        const std::string kind = parseString(value, key);
        if (kind == "contiguous") {
          cfg.partition = PartitionStrategy::Contiguous;
        } else if (kind == "weighted") {
          cfg.partition = PartitionStrategy::Weighted;
        } else {
          fail("partition must be \"contiguous\" or \"weighted\", got \"" +
               kind + "\"");
        }
      } else if (key == "repartition_every_s") {
        cfg.repartition_every_s = parseNumber(value, key);
      } else if (key == "precompute") {
        cfg.precompute_cv = parseBool(value, key);
      } else if (key == "explain") {
        cfg.explain = parseBool(value, key);
      } else {
        unknownKey(key,
                   "requests|window_s|arrivals|warmup_s|seed|shards|"
                   "commit_groups|partition|repartition_every_s|"
                   "precompute|explain");
      }
    } else if (section_ == "population") {
      if (key == "speed_kmh") {
        const auto [lo, hi] = parsePair(value, key);
        pop.speed_min_kmh = lo;
        pop.speed_max_kmh = hi;
      } else if (key == "angle_deg") {
        const auto [mean, sigma] = parsePair(value, key);
        pop.angle_mean_deg = mean;
        pop.angle_sigma_deg = sigma;
      } else if (key == "distance_km") {
        const auto [lo, hi] = parsePair(value, key);
        pop.distance_min_km = lo;
        pop.distance_max_km = hi;
      } else if (key == "mix") {
        const std::vector<double> f = parseList(value, key, 3);
        try {
          pop.mix = cellular::TrafficMix{f[0], f[1], f[2]};
        } catch (const std::invalid_argument& e) {
          fail(e.what());
        }
      } else if (key == "tracking_window_s") {
        pop.tracking_window_s = parseNumber(value, key);
      } else if (key == "gps_fix_period_s") {
        pop.gps_fix_period_s = parseNumber(value, key);
      } else if (key == "gps_error_m") {
        if (value == "none") {
          pop.gps_error_m.reset();
        } else {
          pop.gps_error_m = parseNumber(value, key);
        }
      } else {
        unknownKey(key,
                   "speed_kmh|angle_deg|distance_km|mix|tracking_window_s|"
                   "gps_fix_period_s|gps_error_m");
      }
    } else if (section_ == "at") {
      serve::ScenarioMutation& m = cfg.mutations[at_index_];
      const auto setOp = [&](serve::MutationOp op) {
        if (at_action_seen_) {
          fail(
              "[at] sections take exactly one action key "
              "(arrival_scale|outage|restore|mix)");
        }
        m.op = op;
        at_action_seen_ = true;
      };
      if (key == "cell") {
        const std::uint64_t id = parseUnsigned(value, key);
        if (id > std::numeric_limits<cellular::CellId>::max()) {
          fail("cell id " + std::string{value} + " out of range");
        }
        m.cell = static_cast<cellular::CellId>(id);
      } else if (key == "arrival_scale") {
        setOp(serve::MutationOp::ArrivalScale);
        m.scale = parseNumber(value, key);
      } else if (key == "outage") {
        if (!parseBool(value, key)) fail("outage only takes true");
        setOp(serve::MutationOp::Outage);
      } else if (key == "restore") {
        if (!parseBool(value, key)) fail("restore only takes true");
        setOp(serve::MutationOp::Restore);
      } else if (key == "mix") {
        const std::vector<double> f = parseList(value, key, 3);
        try {
          m.mix = cellular::TrafficMix{f[0], f[1], f[2]};
        } catch (const std::invalid_argument& e) {
          fail(e.what());
        }
        setOp(serve::MutationOp::Mix);
      } else {
        unknownKey(key, "cell|arrival_scale|outage|restore|mix");
      }
    } else {  // turn
      if (key == "sigma_max_deg") {
        pop.turn.sigma_max_deg = parseNumber(value, key);
      } else if (key == "v_ref_kmh") {
        pop.turn.v_ref_kmh = parseNumber(value, key);
      } else {
        unknownKey(key, "sigma_max_deg|v_ref_kmh");
      }
    }
  }

  [[noreturn]] void unknownKey(const std::string& key,
                               std::string_view accepted) const {
    fail("unknown key '" + key + "' in [" + section_ + "] (accepted: " +
         std::string{accepted} + ")");
  }

  /// `extends = "base"`: replace the (still pristine) spec with the base's
  /// so everything after overrides it. Only legal as the very first key —
  /// later, the base would silently clobber what the file already set.
  /// Nested ScenarioFileErrors (a broken base FILE) propagate untouched so
  /// they name the base; everything else (unknown base, cycle) is wrapped
  /// with this file and line.
  void applyExtends(const std::string& base) {
    if (!extends_allowed_) {
      fail("extends must be the first key of the file");
    }
    // A base is a scenario NAME — the resolver derives any sibling path
    // from it. Path spellings ("./self", "sub/../x") would also evade the
    // string-equality cycle detector, so they are rejected outright.
    if (base.empty() || base.find('/') != std::string::npos ||
        base.find('\\') != std::string::npos) {
      fail("extends expects a scenario name, not a path: \"" + base + "\"");
    }
    try {
      if (resolve_base_) {
        spec_ = resolve_base_(base);
      } else {
        spec_ = ScenarioCatalog::builtins().at(base);
      }
    } catch (const ScenarioFileError&) {
      throw;
    } catch (const std::exception& e) {
      fail(std::string{"extends \""} + base + "\": " + e.what());
    }
  }

  double parseNumber(std::string_view value, std::string_view key) const {
    double v = 0.0;
    const auto res = std::from_chars(value.data(), value.data() + value.size(), v);
    // Finite only: from_chars accepts "nan"/"inf", but no config field
    // means anything non-finite — NaN would also slide through every
    // range check in validateConfig().
    if (res.ec != std::errc{} || res.ptr != value.data() + value.size() ||
        !std::isfinite(v)) {
      fail(std::string{key} + " expects a finite number, got '" +
           std::string{value} + "'");
    }
    return v;
  }

  int parseInt(std::string_view value, std::string_view key) const {
    int v = 0;
    const auto res = std::from_chars(value.data(), value.data() + value.size(), v);
    if (res.ec != std::errc{} || res.ptr != value.data() + value.size()) {
      fail(std::string{key} + " expects an integer, got '" +
           std::string{value} + "'");
    }
    return v;
  }

  std::uint64_t parseUnsigned(std::string_view value,
                              std::string_view key) const {
    std::uint64_t v = 0;
    const auto res = std::from_chars(value.data(), value.data() + value.size(), v);
    if (res.ec != std::errc{} || res.ptr != value.data() + value.size()) {
      fail(std::string{key} + " expects a non-negative integer, got '" +
           std::string{value} + "'");
    }
    return v;
  }

  bool parseBool(std::string_view value, std::string_view key) const {
    if (value == "true") return true;
    if (value == "false") return false;
    fail(std::string{key} + " expects true or false, got '" +
         std::string{value} + "'");
  }

  /// Strict quoted-string scan: one opening quote, escapes resolved, one
  /// unescaped closing quote, nothing after it. Anything else errors —
  /// `name = "a" "b"` or an escaped-away terminator must not silently
  /// produce a garbage value.
  std::string parseString(std::string_view value, std::string_view key) const {
    if (value.size() < 2 || value.front() != '"') {
      fail(std::string{key} + " expects a quoted string, got '" +
           std::string{value} + "'");
    }
    std::string out;
    out.reserve(value.size() - 2);
    std::size_t i = 1;
    for (; i < value.size(); ++i) {
      const char c = value[i];
      if (c == '\\') {
        if (i + 1 >= value.size()) {
          fail(std::string{key} + ": dangling escape at end of value");
        }
        const char escaped = value[++i];
        // \n and \r restore the line breaks quote() folded away; any other
        // escaped character stands for itself.
        out += escaped == 'n' ? '\n' : escaped == 'r' ? '\r' : escaped;
      } else if (c == '"') {
        break;
      } else {
        out += c;
      }
    }
    if (i >= value.size()) {
      fail(std::string{key} + ": unterminated quoted string");
    }
    if (i + 1 != value.size()) {
      fail(std::string{key} + ": unexpected content after the closing quote");
    }
    return out;
  }

  std::vector<double> parseList(std::string_view value, std::string_view key,
                                std::size_t count) const {
    if (value.size() < 2 || value.front() != '[' || value.back() != ']') {
      fail(std::string{key} + " expects a [a, b, ...] list, got '" +
           std::string{value} + "'");
    }
    std::vector<double> out;
    std::string_view rest = trim(value.substr(1, value.size() - 2));
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      out.push_back(parseNumber(trim(rest.substr(0, comma)), key));
      if (comma == std::string_view::npos) break;
      rest = trim(rest.substr(comma + 1));
      if (rest.empty()) fail(std::string{key} + ": trailing comma");
    }
    if (out.size() != count) {
      fail(std::string{key} + " expects exactly " + std::to_string(count) +
           " values, got " + std::to_string(out.size()));
    }
    return out;
  }

  std::pair<double, double> parsePair(std::string_view value,
                                      std::string_view key) const {
    const std::vector<double> v = parseList(value, key, 2);
    return {v[0], v[1]};
  }

  std::string source_;
  const cellular::PolicyRuntime& runtime_;
  const ScenarioBaseResolver& resolve_base_;
  ScenarioSpec spec_;
  int line_ = 0;
  std::string section_;
  std::set<std::string> seen_;      ///< "section.key" per plain section.
  std::set<std::string> sections_;  ///< Singleton sections seen.
  std::set<cellular::CellId> file_cells_;  ///< [cell N] ids of THIS file.
  cellular::CellId cell_id_ = 0;    ///< Valid while section_ == "cell".
  std::size_t cell_index_ = 0;      ///< Index into cell_overrides.
  int cell_header_line_ = 0;
  bool cell_key_seen_ = false;
  std::size_t at_index_ = 0;        ///< Valid while section_ == "at".
  int at_header_line_ = 0;
  bool at_action_seen_ = false;
  bool extends_allowed_ = true;     ///< Cleared by the first key/section.
};

}  // namespace

ScenarioFileError::ScenarioFileError(std::string_view source, int line,
                                     const std::string& message)
    : std::runtime_error(std::string{source} +
                         (line > 0 ? ":" + std::to_string(line) : "") + ": " +
                         message),
      line_{line} {}

ScenarioSpec parseScenarioFile(std::string_view text,
                               const cellular::PolicyRuntime& runtime,
                               std::string_view source_name,
                               const ScenarioBaseResolver& resolve_base) {
  return Parser{source_name, runtime, resolve_base}.run(text);
}

ScenarioSpec parseScenarioFile(std::istream& in,
                               const cellular::PolicyRuntime& runtime,
                               std::string_view source_name,
                               const ScenarioBaseResolver& resolve_base) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseScenarioFile(buffer.str(), runtime, source_name, resolve_base);
}

namespace {

/// Directory part of a path (empty when the path has none), so extends
/// bases resolve relative to the extending file.
[[nodiscard]] std::string directoryOf(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? std::string{} : path.substr(0, slash + 1);
}

/// loadScenarioFile with the chain of files currently being resolved, so a
/// cycle (a.scn extends b.scn extends a.scn) fails with a readable chain
/// instead of recursing forever. \p chain holds the paths in resolution
/// order, the innermost last.
ScenarioSpec loadScenarioFileChained(const std::string& path,
                                     const cellular::PolicyRuntime& runtime,
                                     std::vector<std::string>& chain) {
  for (const std::string& seen : chain) {
    if (seen == path) {
      std::string cycle;
      for (const std::string& p : chain) cycle += p + " -> ";
      throw std::runtime_error("extends cycle: " + cycle + path);
    }
  }
  std::ifstream in{path};
  if (!in) {
    throw ScenarioFileError(path, 0, "cannot open scenario file");
  }
  chain.push_back(path);
  const std::string dir = directoryOf(path);
  const ScenarioBaseResolver resolver =
      [&](const std::string& name) -> ScenarioSpec {
    // A sibling NAME.scn beats a catalog built-in: local families can
    // shadow and extend shipped scenarios.
    const std::string sibling = dir + name + ".scn";
    if (std::ifstream probe{sibling}) {
      return loadScenarioFileChained(sibling, runtime, chain);
    }
    return ScenarioCatalog::builtins().at(name);  // ScenarioError names it
  };
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ScenarioSpec spec =
      parseScenarioFile(buffer.str(), runtime, path, resolver);
  chain.pop_back();
  return spec;
}

}  // namespace

ScenarioSpec loadScenarioFile(const std::string& path,
                              const cellular::PolicyRuntime& runtime) {
  std::vector<std::string> chain;
  return loadScenarioFileChained(path, runtime, chain);
}

std::string writeScenarioFile(const ScenarioSpec& spec) {
  const SimulationConfig& cfg = spec.config;
  const ScenarioParams& pop = cfg.scenario;
  // The header embeds the name only when it is comment-safe; anything
  // exotic (line breaks are legal in strings) must not leak outside the
  // comment and break the write->parse fixed point.
  std::string safe_name = spec.name;
  for (const char c : safe_name) {
    if (c == '\n' || c == '\r' || c == '#') {
      safe_name = "NAME";
      break;
    }
  }
  std::ostringstream os;
  os << "# FACS scenario file — grammar in sim/scenario_file.hpp and the\n"
        "# README's \"Scenario files\" section. Regenerate with\n"
        "# facs_cli --dump-scenario "
     << (safe_name.empty() ? std::string{"NAME"} : safe_name) << ".\n\n";
  os << "[scenario]\n"
     << "name = " << quote(spec.name) << "\n"
     << "summary = " << quote(spec.summary) << "\n"
     << "policy = " << quote(spec.policy) << "\n\n";
  os << "[network]\n"
     << "rings = " << cfg.rings << "\n"
     << "cell_radius_km = " << shortestNumber(cfg.cell_radius_km) << "\n"
     << "capacity_bu = " << cfg.capacity_bu << "\n"
     << "handoffs = " << (cfg.enable_handoffs ? "true" : "false") << "\n"
     << "mobility_update_s = " << shortestNumber(cfg.mobility_update_s)
     << "\n\n";
  for (const CellOverride& o : cfg.cell_overrides) {
    os << "[cell " << o.cell << "]\n";
    if (o.capacity_bu) os << "capacity_bu = " << *o.capacity_bu << "\n";
    if (o.arrival_scale) {
      os << "arrival_scale = " << shortestNumber(*o.arrival_scale) << "\n";
    }
    if (o.mix) {
      os << "mix = ["
         << shortestNumber(o.mix->fraction(cellular::ServiceClass::Text))
         << ", "
         << shortestNumber(o.mix->fraction(cellular::ServiceClass::Voice))
         << ", "
         << shortestNumber(o.mix->fraction(cellular::ServiceClass::Video))
         << "]\n";
    }
    os << "\n";
  }
  os << "[run]\n"
     << "requests = " << cfg.total_requests << "\n"
     << "window_s = " << shortestNumber(cfg.arrival_window_s) << "\n"
     << "arrivals = "
     << (cfg.arrivals == ArrivalProcess::Poisson ? "\"poisson\""
                                                 : "\"uniform\"")
     << "\n"
     << "warmup_s = " << shortestNumber(cfg.warmup_s) << "\n"
     << "seed = " << cfg.seed << "\n"
     << "shards = " << cfg.shards << "\n"
     << "commit_groups = " << cfg.commit_groups << "\n"
     << "partition = "
     << (cfg.partition == PartitionStrategy::Weighted ? "\"weighted\""
                                                      : "\"contiguous\"")
     << "\n"
     << "repartition_every_s = " << shortestNumber(cfg.repartition_every_s)
     << "\n"
     << "precompute = " << (cfg.precompute_cv ? "true" : "false") << "\n"
     << "explain = " << (cfg.explain ? "true" : "false") << "\n\n";
  os << "[population]\n"
     << "speed_kmh = [" << shortestNumber(pop.speed_min_kmh) << ", "
     << shortestNumber(pop.speed_max_kmh) << "]\n"
     << "angle_deg = [" << shortestNumber(pop.angle_mean_deg) << ", "
     << shortestNumber(pop.angle_sigma_deg) << "]\n"
     << "distance_km = [" << shortestNumber(pop.distance_min_km) << ", "
     << shortestNumber(pop.distance_max_km) << "]\n"
     << "mix = ["
     << shortestNumber(pop.mix.fraction(cellular::ServiceClass::Text)) << ", "
     << shortestNumber(pop.mix.fraction(cellular::ServiceClass::Voice)) << ", "
     << shortestNumber(pop.mix.fraction(cellular::ServiceClass::Video))
     << "]\n"
     << "tracking_window_s = " << shortestNumber(pop.tracking_window_s) << "\n"
     << "gps_fix_period_s = " << shortestNumber(pop.gps_fix_period_s) << "\n"
     << "gps_error_m = "
     << (pop.gps_error_m ? shortestNumber(*pop.gps_error_m)
                         : std::string{"none"})
     << "\n\n";
  os << "[turn]\n"
     << "sigma_max_deg = " << shortestNumber(pop.turn.sigma_max_deg) << "\n"
     << "v_ref_kmh = " << shortestNumber(pop.turn.v_ref_kmh) << "\n";
  // Mutations in config (= file) order; the parser re-appends them in the
  // same order, so equal-timestamp tie-breaks survive the round trip.
  for (const serve::ScenarioMutation& m : cfg.mutations) {
    os << "\n[at " << shortestNumber(m.at_s) << "]\n";
    if (m.cell) os << "cell = " << *m.cell << "\n";
    switch (m.op) {
      case serve::MutationOp::ArrivalScale:
        os << "arrival_scale = " << shortestNumber(m.scale) << "\n";
        break;
      case serve::MutationOp::Outage:
        os << "outage = true\n";
        break;
      case serve::MutationOp::Restore:
        os << "restore = true\n";
        break;
      case serve::MutationOp::Mix:
        os << "mix = ["
           << shortestNumber(m.mix->fraction(cellular::ServiceClass::Text))
           << ", "
           << shortestNumber(m.mix->fraction(cellular::ServiceClass::Voice))
           << ", "
           << shortestNumber(m.mix->fraction(cellular::ServiceClass::Video))
           << "]\n";
        break;
    }
  }
  return os.str();
}

}  // namespace facs::sim
