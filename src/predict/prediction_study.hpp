#pragma once
/// \file prediction_study.hpp
/// Quantifies the paper's central claim — "the proposed scheme can achieve
/// a better prediction of the user behavior" — as a measurable ranking
/// problem. For a population of tracked users we ask each predictor for a
/// score, roll the ground-truth mobility forward, label each user by
/// whether they actually approached their base station over the horizon,
/// and compare predictors by ROC AUC (probability that a random approacher
/// outranks a random retreater).
///
/// Predictors compared:
///   * facs-cv          — FLC1's correction value (the paper's predictor);
///   * straight-line    — cosine of the measured angle, i.e. dead-reckoning
///                        the stated velocity (what SCC's projection does);
///   * proximity        — negative current distance (a mobility-blind
///                        baseline).

#include <string>
#include <vector>

#include "sim/workload.hpp"

namespace facs::predict {

struct PredictionConfig {
  sim::ScenarioParams scenario{};
  /// How far ahead ground truth is rolled to label the outcome.
  double horizon_s = 300.0;
  /// Ground-truth integration step.
  double step_s = 5.0;
  int samples = 2000;
  std::uint64_t seed = 1;
};

/// One predictor's quality over the sampled population.
struct PredictorReport {
  std::string name;
  /// ROC AUC in [0, 1]: 0.5 = uninformative, 1 = perfect ranking.
  double auc = 0.5;
  double mean_score_approachers = 0.0;
  double mean_score_retreaters = 0.0;
};

struct StudyResult {
  int approachers = 0;  ///< Users whose final BS distance shrank.
  int retreaters = 0;
  std::vector<PredictorReport> predictors;
};

/// Area under the ROC curve via the rank-sum statistic; ties count half.
/// \throws std::invalid_argument unless both classes are non-empty.
[[nodiscard]] double rocAuc(const std::vector<double>& positive_scores,
                            const std::vector<double>& negative_scores);

/// Runs the full study. Deterministic per config.
/// \throws std::invalid_argument on non-positive horizon/step/samples.
[[nodiscard]] StudyResult runPredictionStudy(const PredictionConfig& config);

}  // namespace facs::predict
