#include "predict/prediction_study.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/facs.hpp"
#include "mobility/gps.hpp"

namespace facs::predict {

using cellular::Vec2;

double rocAuc(const std::vector<double>& positive_scores,
              const std::vector<double>& negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) {
    throw std::invalid_argument("AUC needs both outcome classes");
  }
  double wins = 0.0;
  for (const double p : positive_scores) {
    for (const double n : negative_scores) {
      if (p > n) {
        wins += 1.0;
      } else if (p == n) {
        wins += 0.5;
      }
    }
  }
  return wins / (static_cast<double>(positive_scores.size()) *
                 static_cast<double>(negative_scores.size()));
}

namespace {

/// Tracks one synthetic user through the GPS window exactly the way the
/// simulator does, returning the controller-visible snapshot and the
/// ground-truth state at decision time.
struct TrackedUser {
  cellular::UserSnapshot snapshot;
  mobility::MotionState truth;
  std::shared_ptr<mobility::SpeedDependentTurn> model;
};

TrackedUser track(const sim::ScenarioParams& scenario, sim::Rng& rng) {
  TrackedUser user;
  const sim::RequestPlan plan = sim::drawRequest(scenario, {0.0, 0.0}, 0, rng);
  user.truth = plan.initial;
  user.model = std::make_shared<mobility::SpeedDependentTurn>(scenario.turn);

  const double window = scenario.tracking_window_s;
  if (window > 0.0) {
    const mobility::GpsSampler sampler{scenario.gps_error_m.value_or(0.0)};
    const double period = scenario.gps_fix_period_s;
    const int fixes = static_cast<int>(window / period) + 1;
    mobility::GpsEstimator estimator{
        static_cast<std::size_t>(std::max(2, fixes))};
    estimator.addFix(sampler.sample(0.0, user.truth.position_km, rng));
    for (int i = 1; i < fixes; ++i) {
      user.model->step(user.truth, period, rng);
      estimator.addFix(sampler.sample(i * period, user.truth.position_km, rng));
    }
    user.snapshot = estimator.snapshot({0.0, 0.0});
    user.snapshot.position = user.truth.position_km;
  } else {
    user.snapshot = mobility::snapshotFromTruth(user.truth, {0.0, 0.0});
  }
  return user;
}

}  // namespace

StudyResult runPredictionStudy(const PredictionConfig& config) {
  if (!(config.horizon_s > 0.0) || !(config.step_s > 0.0)) {
    throw std::invalid_argument("prediction horizon and step must be positive");
  }
  if (config.samples < 2) {
    throw std::invalid_argument("prediction study needs >= 2 samples");
  }

  const core::FacsController facs;
  sim::Rng rng = sim::makeRng(config.seed, 17);

  // Scores per predictor, split by the eventual outcome.
  struct ScoreBuckets {
    std::vector<double> approachers;
    std::vector<double> retreaters;
  };
  ScoreBuckets cv_scores;
  ScoreBuckets straight_scores;
  ScoreBuckets proximity_scores;

  StudyResult result;
  for (int i = 0; i < config.samples; ++i) {
    TrackedUser user = track(config.scenario, rng);

    const double cv = facs.predictCv(user.snapshot);
    // Dead reckoning: the stated velocity carries the user toward the BS
    // when the measured angle is small — exactly what a shadow-cluster
    // projection assumes.
    const double straight =
        std::cos(cellular::degToRad(user.snapshot.angle_deg));
    const double proximity = -user.snapshot.distance_km;

    // Ground truth: roll the real mobility forward.
    const double start_distance = user.truth.position_km.norm();
    mobility::MotionState state = user.truth;
    for (double t = 0.0; t < config.horizon_s; t += config.step_s) {
      user.model->step(state, config.step_s, rng);
    }
    const bool approached = state.position_km.norm() < start_distance;

    ScoreBuckets* buckets[] = {&cv_scores, &straight_scores,
                               &proximity_scores};
    const double scores[] = {cv, straight, proximity};
    for (int p = 0; p < 3; ++p) {
      if (approached) {
        buckets[p]->approachers.push_back(scores[p]);
      } else {
        buckets[p]->retreaters.push_back(scores[p]);
      }
    }
    approached ? ++result.approachers : ++result.retreaters;
  }

  const auto mean = [](const std::vector<double>& xs) {
    if (xs.empty()) return 0.0;
    double sum = 0.0;
    for (const double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
  };
  const auto report = [&](const std::string& name, const ScoreBuckets& b) {
    PredictorReport r;
    r.name = name;
    r.auc = (b.approachers.empty() || b.retreaters.empty())
                ? 0.5
                : rocAuc(b.approachers, b.retreaters);
    r.mean_score_approachers = mean(b.approachers);
    r.mean_score_retreaters = mean(b.retreaters);
    return r;
  };
  result.predictors.push_back(report("facs-cv", cv_scores));
  result.predictors.push_back(report("straight-line", straight_scores));
  result.predictors.push_back(report("proximity", proximity_scores));
  return result;
}

}  // namespace facs::predict
