#include "serve/service.hpp"

#include <ostream>
#include <sstream>
#include <string>

namespace facs::serve {

namespace {

/// Integer delta helpers: the window's own activity is the difference of
/// run-cumulative counters, which is exact for integers (no float
/// accumulation drift across windows — deltas sum back to the totals
/// bit-for-bit).
[[nodiscard]] long long d(int now, int before) noexcept {
  return static_cast<long long>(now) - static_cast<long long>(before);
}
[[nodiscard]] long long d(std::uint64_t now, std::uint64_t before) noexcept {
  return static_cast<long long>(now - before);
}

}  // namespace

std::string windowJsonLine(const sim::WindowSnapshot& w,
                           const sim::Metrics& prev_cumulative) {
  const sim::Metrics& c = w.cumulative;
  const sim::Metrics& p = prev_cumulative;
  const sim::EngineWindowStats& s = w.stats;
  std::ostringstream os;
  os << "{\"window\": " << w.index
     << ", \"t0\": " << sim::shortestNumber(w.t0)
     << ", \"t1\": " << sim::shortestNumber(w.t1)
     << ", \"final\": " << (w.final_window ? "true" : "false")
     // This window's activity (exact integer deltas).
     << ", \"new_requests\": " << d(c.new_requests, p.new_requests)
     << ", \"new_accepted\": " << d(c.new_accepted, p.new_accepted)
     << ", \"new_blocked\": " << d(c.new_blocked, p.new_blocked)
     << ", \"handoff_requests\": " << d(c.handoff_requests, p.handoff_requests)
     << ", \"handoff_accepted\": " << d(c.handoff_accepted, p.handoff_accepted)
     << ", \"handoff_dropped\": " << d(c.handoff_dropped, p.handoff_dropped)
     << ", \"completed\": " << d(c.completed, p.completed)
     << ", \"engine_events\": " << d(c.engine_events, p.engine_events)
     << ", \"reservations_posted\": "
     << d(c.reservations_posted, p.reservations_posted)
     << ", \"reservations_admitted\": "
     << d(c.reservations_admitted, p.reservations_admitted)
     << ", \"reservations_dropped\": "
     << d(c.reservations_dropped, p.reservations_dropped)
     << ", \"outage_forced_drops\": "
     << d(c.outage_forced_drops, p.outage_forced_drops)
     << ", \"mutations_applied\": "
     << d(c.mutations_applied, p.mutations_applied)
     << ", \"repartitions\": " << d(c.repartitions, p.repartitions)
     << ", \"repartitions_skipped\": "
     << d(c.repartitions_skipped, p.repartitions_skipped)
     << ", \"demand_deltas\": " << d(c.demand_deltas, p.demand_deltas)
     << ", \"shadow_migrations\": "
     << d(c.shadow_migrations, p.shadow_migrations)
     // Run-cumulative state (doubles stay cumulative: windowed differences
     // of floats would not sum back exactly, so the stream never pretends
     // they do).
     << ", \"busy_bu_seconds_cum\": " << sim::shortestNumber(c.busy_bu_seconds)
     << ", \"observed_span_s_cum\": " << sim::shortestNumber(c.observed_span_s)
     << ", \"percent_accepted_cum\": "
     << sim::shortestNumber(c.percentAccepted())
     << ", \"mean_utilization_cum\": "
     << sim::shortestNumber(c.meanUtilization());
  // Per-lane committed events, run-cumulative (integers, so a consumer can
  // window them exactly): the live lane-balance signal — max/mean over the
  // array is the imbalance the weighted partition manages. Deterministic
  // (lane WALL times deliberately never enter the stream: the record must
  // be byte-identical run to run at a fixed seed).
  os << ", \"lane_events_cum\": [";
  for (std::size_t i = 0; i < c.lane_events.size(); ++i) {
    os << (i ? ", " : "") << c.lane_events[i];
  }
  os << "]"
     // Allocation substrate: the flat-memory story, per window.
     << ", \"pool_capacity\": " << s.pool_capacity
     << ", \"pool_live\": " << s.pool_live
     << ", \"pool_high_water\": " << s.pool_high_water
     << ", \"pool_acquired\": " << s.pool_acquired
     << ", \"pool_released\": " << s.pool_released
     << ", \"pool_grow_events\": " << s.pool_grow_events
     << ", \"ring_capacity\": " << s.ring_capacity
     << ", \"ring_high_water\": " << s.ring_high_water
     << ", \"ring_spills\": " << s.ring_spills << "}";
  return os.str();
}

sim::Metrics serveSimulation(const sim::SimulationConfig& config,
                             const sim::ControllerFactory& make_controller,
                             const ServeOptions& options, std::ostream& out) {
  sim::Metrics prev;  // zero-initialized: window 0 deltas are its totals
  sim::ServiceHooks hooks;
  hooks.metrics_every_s = options.metrics_every_s;
  hooks.serve_duration_s = options.duration_s;
  hooks.on_window = [&](const sim::WindowSnapshot& w) {
    out << windowJsonLine(w, prev) << '\n';
    out.flush();  // live consumers read line-by-line
    prev = w.cumulative;
  };
  return sim::runSimulation(config, make_controller, hooks);
}

}  // namespace facs::serve
