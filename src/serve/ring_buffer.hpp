#pragma once
/// \file ring_buffer.hpp
/// Fixed-capacity single-producer/single-consumer ring buffer for the
/// streaming engine's mailboxes. The capacity is rounded up to a power of
/// two so the head/tail indices are masked instead of wrapped with a
/// modulo, and the slots are allocated once at construction — pushing and
/// popping in steady state never touches the allocator, which is the
/// memory contract serve mode asserts (src/serve/service.hpp).
///
/// This is deliberately NOT a lock-free MPMC queue: every ring in the
/// engine is owned by exactly one shard (filled during the local phase,
/// drained by the single-threaded routing step at the barrier), so plain
/// unsynchronized indices are correct. What the type guarantees is FIFO
/// order, zero steady-state allocation, and an honest backpressure signal:
/// tryPush() returns false when full instead of growing, and the caller
/// decides how to spill (the engine keeps a counted overflow vector, so
/// exhaustion is visible in the window stats rather than fatal).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace facs::serve {

/// Smallest power of two >= n (and >= 2, so the mask is never 0).
[[nodiscard]] constexpr std::size_t ringCapacityFor(std::size_t n) noexcept {
  std::size_t cap = 2;
  while (cap < n) cap <<= 1;
  return cap;
}

template <typename T>
class RingBuffer {
 public:
  /// Allocates the slot array once; \p min_capacity is rounded up to a
  /// power of two (so capacity() may exceed the request).
  explicit RingBuffer(std::size_t min_capacity = 1024)
      : slots_(ringCapacityFor(min_capacity)),
        mask_{slots_.size() - 1} {}

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_ - head_);
  }
  [[nodiscard]] bool empty() const noexcept { return head_ == tail_; }
  [[nodiscard]] bool full() const noexcept { return size() == capacity(); }

  /// Largest size() ever observed — the sizing signal the per-window stats
  /// report, so operators can see how close a ring runs to exhaustion.
  [[nodiscard]] std::size_t highWater() const noexcept { return high_water_; }

  /// FIFO append. Returns false (and changes nothing) when full — the
  /// backpressure path; the ring never allocates to make room.
  [[nodiscard]] bool tryPush(T value) {
    if (full()) return false;
    slots_[static_cast<std::size_t>(tail_) & mask_] = std::move(value);
    ++tail_;
    if (size() > high_water_) high_water_ = size();
    return true;
  }

  /// FIFO removal; nullopt when empty.
  [[nodiscard]] std::optional<T> tryPop() {
    if (empty()) return std::nullopt;
    T out = std::move(slots_[static_cast<std::size_t>(head_) & mask_]);
    ++head_;
    return out;
  }

  /// Drops every element (high-water mark is preserved — it documents the
  /// run, not the moment).
  void clear() noexcept { head_ = tail_; }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  /// Free-running indices, masked on access: head_ == tail_ is empty,
  /// tail_ - head_ is the live count. 64-bit, so wrap-around of the
  /// counters themselves is not a practical concern.
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace facs::serve
