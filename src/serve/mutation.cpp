#include "serve/mutation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace facs::serve {

void validateMutation(const ScenarioMutation& m, std::size_t index,
                      std::size_t cell_count, bool poisson_arrivals) {
  const std::string where = "mutation " + std::to_string(index) + " ([at " +
                            std::to_string(m.at_s) + "]): ";
  if (!std::isfinite(m.at_s) || m.at_s < 0.0) {
    throw std::invalid_argument(where + "time must be finite and >= 0");
  }
  if (m.cell && static_cast<std::size_t>(*m.cell) >= cell_count) {
    throw std::invalid_argument(where + "cell " + std::to_string(*m.cell) +
                                " outside the " +
                                std::to_string(cell_count) + "-cell disk");
  }
  switch (m.op) {
    case MutationOp::ArrivalScale:
      if (!std::isfinite(m.scale) || !(m.scale > 0.0)) {
        throw std::invalid_argument(where +
                                    "arrival_scale must be positive and "
                                    "finite");
      }
      if (!m.cell && !poisson_arrivals) {
        throw std::invalid_argument(
            where +
            "a global arrival_scale needs arrivals = \"poisson\" (a "
            "uniform burst draws every instant up front; target a cell "
            "instead, or switch the arrival process)");
      }
      break;
    case MutationOp::Outage:
    case MutationOp::Restore:
      if (!m.cell) {
        throw std::invalid_argument(where + mutationOpName(m.op) +
                                    " needs a cell");
      }
      break;
    case MutationOp::Mix:
      if (!m.mix) {
        throw std::invalid_argument(where + "mix op carries no mix");
      }
      break;
  }
}

std::vector<std::size_t> mutationSchedule(
    const std::vector<ScenarioMutation>& list) {
  std::vector<std::size_t> order(list.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return list[a].at_s < list[b].at_s;
                   });
  return order;
}

std::string mutationOpName(MutationOp op) {
  switch (op) {
    case MutationOp::ArrivalScale:
      return "arrival_scale";
    case MutationOp::Outage:
      return "outage";
    case MutationOp::Restore:
      return "restore";
    case MutationOp::Mix:
      return "mix";
  }
  return "unknown";
}

}  // namespace facs::serve
