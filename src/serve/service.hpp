#pragma once
/// \file service.hpp
/// Streaming service mode: run the engine with window hooks and emit one
/// JSON Lines record per metrics window to a stream — the always-on
/// deployment story (`facs_cli --serve`). Each record carries the window's
/// INTEGER DELTAS (what happened in this window: requests, accepts,
/// blocks, completions...) plus the run-cumulative doubles, the
/// run-cumulative per-lane committed-event counts (`lane_events_cum` — the
/// live lane-balance signal; wall-clock lane times stay out of the stream
/// so records remain byte-identical run to run) and the
/// allocation-substrate stats (call-pool occupancy/high-water, ring
/// high-water/spills) a supervisor needs to assert the engine's memory is
/// flat.
///
/// Equivalence contract (tested in tests/sim/serve_mode_test.cpp): windows
/// are aligned to the engine's own tick-window barriers, so a streamed run
/// commits identically to a batch run — the integer deltas of all windows
/// sum exactly to the batch totals, and the final record's cumulative
/// counters are bit-identical to the batch Metrics, at any shards ×
/// commit_groups. Repeated runs of a fixed (config, seed, shards,
/// commit_groups) are byte-identical, and every record's METRICS content
/// is shard-count-invariant — only the substrate stats (ring occupancy)
/// reflect how the work happened to be partitioned. One caveat for runs
/// WITHOUT handoffs (no natural barriers): the emission period itself
/// windows the run, which lowers how many calls are materialized at once
/// — every metric still matches the batch run except
/// peak_concurrent_calls, which is smaller (that saving is the point).

#include <iosfwd>

#include "sim/simulator.hpp"

namespace facs::serve {

/// Knobs of one streaming run.
struct ServeOptions {
  /// Emission period (simulated seconds): a record per first barrier at or
  /// past each multiple. 0 = a record at every barrier.
  double metrics_every_s = 60.0;
  /// > 0: always-on mode — ignore total_requests as a count and keep the
  /// Poisson process running until this simulated instant, then drain.
  /// 0 = serve the configured batch workload (still streamed).
  double duration_s = 0.0;
};

/// One JSON line (no trailing newline) for a window snapshot given the
/// previous window's cumulative state. Exposed for tests; serveSimulation
/// is the loop around it.
[[nodiscard]] std::string windowJsonLine(const sim::WindowSnapshot& w,
                                         const sim::Metrics& prev_cumulative);

/// Runs the simulation in streaming mode, writing one JSONL record per
/// window to \p out, and returns the final Metrics (bit-identical to the
/// batch runSimulation for the same config when duration_s == 0).
sim::Metrics serveSimulation(const sim::SimulationConfig& config,
                             const sim::ControllerFactory& make_controller,
                             const ServeOptions& options, std::ostream& out);

}  // namespace facs::serve
