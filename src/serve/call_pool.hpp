#pragma once
/// \file call_pool.hpp
/// Slab/freelist pool for per-call state. The batch engine used to keep
/// one CallState per call for the whole run — cumulative-call memory, the
/// bug serve mode cannot live with (an always-on engine would grow without
/// bound). The pool makes call storage proportional to CONCURRENT calls:
/// a slot is acquired when a call materializes, released the moment the
/// call completes/blocks/drops, and recycled for a later call. Slots hold
/// the value in-place (std::optional), so acquire/release construct and
/// destroy without touching the allocator once the slab has grown to the
/// workload's high-water mark — after warmup, growEvents() stays flat,
/// which is exactly what the serve-mode CI smoke asserts.
///
/// Staleness: events in flight name (slot, call id). A recycled slot
/// carries a different occupant id, so occupantOf(slot) != event.call
/// identifies stale events cheaply — the generation check that replaces
/// "look the call up in a map that never shrinks".
///
/// Concurrency contract: acquire() and release() are called only from
/// single-threaded engine sections (window-start materialization and the
/// tick barrier). Shard workers and commit lanes only read occupantOf()
/// and mutate their own live slots, which is race-free because slabs
/// never move (slots are stored in fixed-size chunks, not one vector).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "cellular/call.hpp"

namespace facs::serve {

inline constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

template <typename T>
class CallPool {
 public:
  /// Everything the per-window stats report about the pool.
  struct Stats {
    std::uint64_t capacity = 0;    ///< Slots allocated (slab total).
    std::uint64_t live = 0;        ///< Slots currently occupied.
    std::uint64_t high_water = 0;  ///< Max simultaneous live slots ever.
    std::uint64_t acquired = 0;    ///< Lifetime acquisitions.
    std::uint64_t released = 0;    ///< Lifetime releases.
    std::uint64_t grow_events = 0; ///< Slab allocations (flat after warmup).
  };

  CallPool() = default;
  CallPool(const CallPool&) = delete;
  CallPool& operator=(const CallPool&) = delete;

  /// Takes a free slot (LIFO recycle order — deterministic given a
  /// deterministic release order) and constructs the value in place.
  /// Grows by one fixed-size slab when the freelist is empty.
  template <typename... Args>
  [[nodiscard]] std::uint32_t acquire(cellular::CallId occupant,
                                      Args&&... args) {
    if (free_head_ == kNoSlot) grow();
    const std::uint32_t index = free_head_;
    Slot& s = slot(index);
    free_head_ = s.next_free;
    s.value.emplace(std::forward<Args>(args)...);
    s.occupant = occupant;
    ++live_;
    ++acquired_;
    if (live_ > high_water_) high_water_ = live_;
    return index;
  }

  /// Destroys the value and recycles the slot. The occupant id is cleared,
  /// so any event still naming this (slot, call) pair reads as stale.
  void release(std::uint32_t index) {
    Slot& s = slot(index);
    s.value.reset();
    s.occupant = 0;
    s.next_free = free_head_;
    free_head_ = index;
    --live_;
    ++released_;
  }

  [[nodiscard]] T& at(std::uint32_t index) { return *slot(index).value; }
  [[nodiscard]] const T& at(std::uint32_t index) const {
    return *slot(index).value;
  }

  /// 0 when the slot is free — compare against an event's call id to
  /// detect recycled slots.
  [[nodiscard]] cellular::CallId occupantOf(std::uint32_t index) const {
    return slot(index).occupant;
  }

  [[nodiscard]] std::uint64_t live() const noexcept { return live_; }

  [[nodiscard]] Stats stats() const noexcept {
    Stats s;
    s.capacity = static_cast<std::uint64_t>(slabs_.size()) * kSlabSize;
    s.live = live_;
    s.high_water = high_water_;
    s.acquired = acquired_;
    s.released = released_;
    s.grow_events = grow_events_;
    return s;
  }

  /// Visits every occupied slot in slot-index order (deterministic).
  /// \p fn receives (slot index, occupant id, T&).
  template <typename Fn>
  void forEachLive(Fn&& fn) {
    for (std::size_t si = 0; si < slabs_.size(); ++si) {
      Slot* slab = slabs_[si].get();
      for (std::size_t i = 0; i < kSlabSize; ++i) {
        Slot& s = slab[i];
        if (s.occupant != 0) {
          fn(static_cast<std::uint32_t>(si * kSlabSize + i), s.occupant,
             *s.value);
        }
      }
    }
  }

 private:
  /// Slab granularity: big enough that growth is rare, small enough that
  /// an idle engine stays lean. Fixed-size heap arrays keep every slot at
  /// a stable address for the pool's lifetime (shard workers hold
  /// references across phases), unlike one growing vector.
  static constexpr std::size_t kSlabSize = 1024;

  struct Slot {
    std::optional<T> value;
    cellular::CallId occupant = 0;
    std::uint32_t next_free = kNoSlot;
  };

  [[nodiscard]] Slot& slot(std::uint32_t index) {
    return slabs_[index / kSlabSize][index % kSlabSize];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t index) const {
    return slabs_[index / kSlabSize][index % kSlabSize];
  }

  void grow() {
    const std::size_t base = slabs_.size() * kSlabSize;
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
    // Thread the new slab onto the freelist back to front, so slots hand
    // out in ascending index order within a slab.
    Slot* slab = slabs_.back().get();
    for (std::size_t i = kSlabSize; i-- > 0;) {
      slab[i].next_free = free_head_;
      free_head_ = static_cast<std::uint32_t>(base + i);
    }
    ++grow_events_;
  }

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t live_ = 0;
  std::uint64_t high_water_ = 0;
  std::uint64_t acquired_ = 0;
  std::uint64_t released_ = 0;
  std::uint64_t grow_events_ = 0;
};

}  // namespace facs::serve
