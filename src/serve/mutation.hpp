#pragma once
/// \file mutation.hpp
/// Live scenario mutations — time-stamped workload changes an always-on
/// run applies while it serves traffic, the serve-mode analogue of
/// ROOT-Sim's PCS model treating time-varying load as a model input
/// rather than a fixed batch parameter. A mutation never executes mid-
/// window: the engine clamps the tick window so a barrier lands exactly
/// at `at_s`, applies every mutation due at that barrier (in file order
/// for equal timestamps), and only then opens the next window. Barrier
/// times are pure functions of the config, so a mutation script is
/// deterministic at any shard count and seed-stable like everything else.
///
/// Scenario files spell these as repeatable `[at T]` sections (see
/// sim/scenario_file.hpp); SimulationConfig::mutations carries them in
/// file order.
///
/// What each op does at its barrier:
///  * ArrivalScale, no cell  — multiply the Poisson arrival rate by
///    `scale` from T on (the flash-crowd ramp). Requires Poisson arrivals:
///    a uniform burst draws every instant up front, so there is no rate
///    to change. The residual of the already-drawn next arrival is
///    rescaled memorylessly, so no draw is lost or reordered.
///  * ArrivalScale + cell    — set that cell's spawn weight to `scale`
///    (hotspot forming/cooling); the spawn CDF rebuilds at the barrier.
///  * Outage + cell          — mark the cell down: every live call there
///    is force-dropped at the barrier (deterministically, in call-id
///    order) and all admissions into it — new, handoff, reservation —
///    are denied until restore.
///  * Restore + cell         — bring the cell back up.
///  * Mix, no cell           — replace the population-wide traffic mix
///    for calls materialized from T on.
///  * Mix + cell             — replace that cell's spawn mix likewise.

#include <optional>
#include <string>
#include <vector>

#include "cellular/call.hpp"
#include "cellular/traffic.hpp"

namespace facs::serve {

enum class MutationOp {
  ArrivalScale,  ///< Global rate ramp (no cell) or per-cell spawn weight.
  Outage,        ///< Cell down: live calls dropped, admissions denied.
  Restore,       ///< Cell back up.
  Mix,           ///< Traffic-mix swap, population-wide or per-cell.
};

/// One scheduled workload change. Aggregate — scenario-file parsing and
/// tests build these directly.
struct ScenarioMutation {
  double at_s = 0.0;  ///< Barrier instant the change applies at.
  MutationOp op = MutationOp::ArrivalScale;
  /// Target cell; required for Outage/Restore, optional (= global) for
  /// ArrivalScale and Mix.
  std::optional<cellular::CellId> cell;
  double scale = 1.0;  ///< ArrivalScale only; positive and finite.
  std::optional<cellular::TrafficMix> mix;  ///< Mix only.
};

/// Validates one mutation against a network of \p cell_count cells and
/// the configured arrival process.
/// \throws std::invalid_argument naming the entry index and the problem.
void validateMutation(const ScenarioMutation& m, std::size_t index,
                      std::size_t cell_count, bool poisson_arrivals);

/// The mutation list in application order: sorted by at_s, stable for
/// equal timestamps (file order is the tie-break, so "outage then
/// restore" at one instant means what it says). Indices into \p list.
[[nodiscard]] std::vector<std::size_t> mutationSchedule(
    const std::vector<ScenarioMutation>& list);

/// Human-readable op name (scenario-file writer, logs, tests).
[[nodiscard]] std::string mutationOpName(MutationOp op);

}  // namespace facs::serve
