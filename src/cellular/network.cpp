#include "cellular/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace facs::cellular {

namespace {
struct HexHash {
  std::size_t operator()(const HexCoord& h) const noexcept {
    return std::hash<long long>{}(
        (static_cast<long long>(h.q) << 32) ^
        static_cast<long long>(static_cast<unsigned>(h.r)));
  }
};
}  // namespace

HexNetwork::HexNetwork(int rings, double cell_radius_km,
                       BandwidthUnits capacity_bu,
                       const std::vector<CellCapacityOverride>& capacity_overrides)
    : cell_radius_km_{cell_radius_km} {
  if (rings < 0) throw std::invalid_argument("rings must be >= 0");
  if (!(cell_radius_km > 0.0)) {
    throw std::invalid_argument("cell radius must be positive");
  }

  const std::vector<HexCoord> coords = hexDisk(rings);
  std::vector<BandwidthUnits> capacities(coords.size(), capacity_bu);
  std::vector<bool> overridden(coords.size(), false);
  for (const auto& [cell, bu] : capacity_overrides) {
    if (static_cast<std::size_t>(cell) >= coords.size()) {
      throw std::invalid_argument(
          "capacity override for cell " + std::to_string(cell) +
          " outside the " + std::to_string(coords.size()) + "-cell disk");
    }
    if (overridden[cell]) {
      throw std::invalid_argument("duplicate capacity override for cell " +
                                  std::to_string(cell));
    }
    if (bu <= 0) {
      throw std::invalid_argument("capacity override for cell " +
                                  std::to_string(cell) + " must be positive");
    }
    capacities[cell] = bu;
    overridden[cell] = true;
  }

  std::unordered_map<HexCoord, CellId, HexHash> index;
  cells_.reserve(coords.size());
  stations_.reserve(coords.size());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const auto id = static_cast<CellId>(i);
    cells_.push_back({id, coords[i], hexCenter(coords[i], cell_radius_km_)});
    stations_.emplace_back(id, capacities[i]);
    index.emplace(coords[i], id);
  }

  neighbors_.resize(cells_.size());
  for (const Cell& c : cells_) {
    for (const HexCoord& n : hexNeighbors(c.coord)) {
      const auto it = index.find(n);
      if (it != index.end()) neighbors_[c.id].push_back(it->second);
    }
  }
}

std::optional<CellId> HexNetwork::cellAt(Vec2 position) const {
  const HexCoord h = pointToHex(position, cell_radius_km_);
  for (const Cell& c : cells_) {
    if (c.coord == h) return c.id;
  }
  return std::nullopt;
}

BandwidthUnits HexNetwork::totalOccupiedBu() const noexcept {
  BandwidthUnits total = 0;
  for (const BaseStation& s : stations_) total += s.occupiedBu();
  return total;
}

BandwidthUnits HexNetwork::totalCapacityBu() const noexcept {
  BandwidthUnits total = 0;
  for (const BaseStation& s : stations_) total += s.capacityBu();
  return total;
}

CellGroupPartition::CellGroupPartition(const HexNetwork& network, int groups) {
  const std::size_t cells = network.cellCount();
  if (groups < 1) throw std::invalid_argument("commit groups must be >= 1");
  groups_ = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(groups), cells));

  // Contiguous balanced ranges: cell c belongs to floor(c * G / cells).
  // Monotone in c, every group non-empty, sizes differ by at most one.
  group_of_.resize(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    group_of_[c] = static_cast<int>((c * static_cast<std::size_t>(groups_)) /
                                    cells);
  }

  computeInterior(network);
}

CellGroupPartition::CellGroupPartition(const HexNetwork& network, int groups,
                                       const std::vector<double>& weights) {
  const std::size_t cells = network.cellCount();
  if (groups < 1) throw std::invalid_argument("commit groups must be >= 1");
  if (weights.size() != cells) {
    throw std::invalid_argument("partition weights must name every cell");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "partition weights must be non-negative and finite");
    }
    total += w;
  }
  groups_ = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(groups), cells));

  // Greedy cumulative-weight walk: close the current group once it has
  // absorbed its fair share of the REMAINING weight (remaining weight over
  // remaining groups — self-correcting, so one huge cell overshooting its
  // group does not starve the rest), while always leaving at least one
  // cell per group still to open. All-zero weights degrade to the uniform
  // walk (every cell weighs 1). Boundaries are monotone in cell id, so the
  // ranges stay contiguous and spatially coherent under the spiral layout.
  group_of_.assign(cells, 0);
  const bool uniform = !(total > 0.0);
  double remaining = uniform ? static_cast<double>(cells) : total;
  int g = 0;
  double acc = 0.0;
  for (std::size_t c = 0; c < cells; ++c) {
    group_of_[c] = g;
    const double w = uniform ? 1.0 : weights[c];
    acc += w;
    remaining -= w;
    const std::size_t cells_left = cells - c - 1;
    const std::size_t groups_left =
        static_cast<std::size_t>(groups_ - g - 1);
    if (groups_left == 0) continue;  // last group takes the tail
    const double target =
        (acc + remaining) / static_cast<double>(groups_left + 1);
    // Close on reaching the fair share — or when the tail has exactly one
    // cell per unopened group left (no group may end up empty).
    if (acc >= target || cells_left == groups_left) {
      ++g;
      acc = 0.0;
    }
  }

  computeInterior(network);
}

void CellGroupPartition::computeInterior(const HexNetwork& network) {
  interior_.assign(group_of_.size(), true);
  boundary_cells_ = 0;
  for (const Cell& cell : network.cells()) {
    const std::size_t i = static_cast<std::size_t>(cell.id);
    for (const CellId n : network.neighbors(cell.id)) {
      if (group_of_[static_cast<std::size_t>(n)] != group_of_[i]) {
        interior_[i] = false;
        break;
      }
    }
    if (!interior_[i]) ++boundary_cells_;
  }
}

}  // namespace facs::cellular
