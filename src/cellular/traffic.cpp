#include "cellular/traffic.hpp"

#include <cmath>
#include <stdexcept>

namespace facs::cellular {

std::string_view toString(ServiceClass c) noexcept {
  switch (c) {
    case ServiceClass::Text:
      return "text";
    case ServiceClass::Voice:
      return "voice";
    case ServiceClass::Video:
      return "video";
  }
  return "text";
}

const ServiceProfile& profileFor(ServiceClass c) noexcept {
  static const std::array<ServiceProfile, kServiceClassCount> kProfiles{{
      {ServiceClass::Text, 1, /*real_time=*/false, /*mean_holding_s=*/120.0},
      {ServiceClass::Voice, 5, /*real_time=*/true, /*mean_holding_s=*/180.0},
      {ServiceClass::Video, 10, /*real_time=*/true, /*mean_holding_s=*/300.0},
  }};
  return kProfiles[static_cast<std::size_t>(c)];
}

TrafficMix::TrafficMix(double text_fraction, double voice_fraction,
                       double video_fraction)
    : fractions_{text_fraction, voice_fraction, video_fraction} {
  double sum = 0.0;
  for (const double f : fractions_) {
    if (f < 0.0 || !std::isfinite(f)) {
      throw std::invalid_argument("traffic mix fractions must be >= 0");
    }
    sum += f;
  }
  if (std::abs(sum - 1.0) > 1e-9) {
    throw std::invalid_argument("traffic mix fractions must sum to 1");
  }
}

double TrafficMix::meanDemandBu() const noexcept {
  double mean = 0.0;
  for (std::size_t i = 0; i < kServiceClassCount; ++i) {
    mean += fractions_[i] *
            profileFor(static_cast<ServiceClass>(i)).demand_bu;
  }
  return mean;
}

ServiceClass TrafficMix::sample(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> u{0.0, 1.0};
  const double x = u(rng);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kServiceClassCount; ++i) {
    cumulative += fractions_[i];
    if (x < cumulative) return static_cast<ServiceClass>(i);
  }
  return ServiceClass::Video;  // guard against rounding at x ~= 1
}

}  // namespace facs::cellular
