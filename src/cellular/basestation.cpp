#include "cellular/basestation.hpp"

#include <stdexcept>
#include <string>

namespace facs::cellular {

BaseStation::BaseStation(CellId cell, BandwidthUnits capacity_bu)
    : cell_{cell}, capacity_{capacity_bu} {
  if (capacity_ <= 0) {
    throw std::invalid_argument("base station capacity must be positive");
  }
}

void BaseStation::allocate(CallId call, BandwidthUnits bu, bool real_time) {
  if (bu <= 0) {
    throw std::invalid_argument("allocation must be a positive number of BUs");
  }
  if (ledger_.contains(call)) {
    throw std::invalid_argument("call " + std::to_string(call) +
                                " already holds an allocation in cell " +
                                std::to_string(cell_));
  }
  if (bu > freeBu()) {
    throw std::logic_error(
        "capacity invariant violated: admitting call " + std::to_string(call) +
        " (" + std::to_string(bu) + " BU) would exceed capacity " +
        std::to_string(capacity_) + " (occupied " +
        std::to_string(occupiedBu()) + ")");
  }
  ledger_.emplace(call, Allocation{bu, real_time});
  if (real_time) {
    rtc_ += bu;
  } else {
    nrtc_ += bu;
  }
}

void BaseStation::release(CallId call) {
  const auto it = ledger_.find(call);
  if (it == ledger_.end()) {
    throw std::invalid_argument("call " + std::to_string(call) +
                                " holds no allocation in cell " +
                                std::to_string(cell_));
  }
  if (it->second.real_time) {
    rtc_ -= it->second.bu;
  } else {
    nrtc_ -= it->second.bu;
  }
  ledger_.erase(it);
}

const Allocation& BaseStation::allocation(CallId call) const {
  const auto it = ledger_.find(call);
  if (it == ledger_.end()) {
    throw std::invalid_argument("call " + std::to_string(call) +
                                " holds no allocation in cell " +
                                std::to_string(cell_));
  }
  return it->second;
}

}  // namespace facs::cellular
