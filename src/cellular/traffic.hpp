#pragma once
/// \file traffic.hpp
/// Service classes and the traffic mix of the paper's evaluation
/// (Section 4): text / voice / video requesting 1 / 5 / 10 bandwidth units
/// (BU) with arrival mix 60 / 30 / 10 %, against a 40 BU base station.

#include <array>
#include <cstdint>
#include <random>
#include <string_view>

namespace facs::cellular {

/// Bandwidth is accounted in the paper's integral Bandwidth Units.
using BandwidthUnits = int;

/// Base-station capacity used throughout the paper's evaluation.
inline constexpr BandwidthUnits kPaperCellCapacityBu = 40;

/// The three service classes of the paper.
enum class ServiceClass : std::uint8_t { Text = 0, Voice = 1, Video = 2 };
inline constexpr std::size_t kServiceClassCount = 3;

[[nodiscard]] std::string_view toString(ServiceClass c) noexcept;

/// Static description of one service class.
struct ServiceProfile {
  ServiceClass service = ServiceClass::Text;
  BandwidthUnits demand_bu = 1;   ///< BUs consumed while the call is active.
  bool real_time = false;         ///< Voice/video are real-time (RTC); text is not (NRTC).
  double mean_holding_s = 120.0;  ///< Mean call holding time (exponential).
};

/// The paper's service profiles: text=1 BU (non-real-time), voice=5 BU,
/// video=10 BU (real-time).
[[nodiscard]] const ServiceProfile& profileFor(ServiceClass c) noexcept;

/// Arrival mix over the three classes. Fractions must be non-negative and
/// sum to 1 (validated on construction).
class TrafficMix {
 public:
  /// \throws std::invalid_argument if fractions are negative or do not sum
  ///         to 1 within 1e-9.
  TrafficMix(double text_fraction, double voice_fraction,
             double video_fraction);

  /// The paper's 60/30/10 % mix.
  [[nodiscard]] static TrafficMix paperDefault() {
    return TrafficMix{0.60, 0.30, 0.10};
  }

  [[nodiscard]] double fraction(ServiceClass c) const noexcept {
    return fractions_[static_cast<std::size_t>(c)];
  }

  /// Mean BU demand of one arrival under this mix.
  [[nodiscard]] double meanDemandBu() const noexcept;

  /// Samples a service class according to the mix.
  [[nodiscard]] ServiceClass sample(std::mt19937_64& rng) const;

 private:
  std::array<double, kServiceClassCount> fractions_;
};

}  // namespace facs::cellular
