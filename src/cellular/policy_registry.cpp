#include "cellular/policy_registry.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace facs::cellular {

namespace {

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
  return s;
}

}  // namespace

PolicySpec PolicySpec::parse(std::string_view text) {
  PolicySpec spec;
  const std::size_t colon = text.find(':');
  spec.name_ = std::string{trim(text.substr(0, colon))};
  if (spec.name_.empty()) {
    throw PolicySpecError("empty policy name in spec '" + std::string{text} +
                          "'");
  }

  if (colon == std::string_view::npos) return spec;
  std::string_view rest = text.substr(colon + 1);
  while (true) {
    const std::size_t comma = rest.find(',');
    const std::string_view token = trim(rest.substr(0, comma));
    if (token.empty()) {
      throw PolicySpecError("policy '" + spec.name_ +
                            "': empty argument in spec '" + std::string{text} +
                            "'");
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      if (!spec.named_.empty()) {
        throw PolicySpecError("policy '" + spec.name_ +
                              "': positional argument '" + std::string{token} +
                              "' after a named one");
      }
      spec.positional_.emplace_back(token);
    } else {
      const std::string key{trim(token.substr(0, eq))};
      const std::string value{trim(token.substr(eq + 1))};
      if (key.empty() || value.empty()) {
        throw PolicySpecError("policy '" + spec.name_ +
                              "': malformed key=value argument '" +
                              std::string{token} + "'");
      }
      if (!spec.named_.emplace(key, value).second) {
        throw PolicySpecError("policy '" + spec.name_ +
                              "': duplicate argument '" + key + "'");
      }
    }
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  return spec;
}

bool PolicySpec::hasKey(std::string_view key) const noexcept {
  return named_.find(key) != named_.end();
}

double PolicySpec::toNumber(const std::string& value,
                            std::string_view what) const {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw PolicySpecError("policy '" + name_ + "': " + std::string{what} +
                          " expects a number, got '" + value + "'");
  }
}

double PolicySpec::numberAt(std::size_t index, double fallback) const {
  if (index >= positional_.size()) return fallback;
  return toNumber(positional_[index],
                  "argument #" + std::to_string(index + 1));
}

double PolicySpec::numberFor(std::string_view key, double fallback) const {
  const auto it = named_.find(key);
  if (it == named_.end()) return fallback;
  return toNumber(it->second, "argument '" + std::string{key} + "'");
}

int PolicySpec::toInt(double value, std::string_view what) const {
  const int i = static_cast<int>(value);
  if (static_cast<double>(i) != value) {
    throw PolicySpecError("policy '" + name_ + "': " + std::string{what} +
                          " expects an integer");
  }
  return i;
}

int PolicySpec::intAt(std::size_t index, int fallback) const {
  if (index >= positional_.size()) return fallback;
  return toInt(numberAt(index, fallback),
               "argument #" + std::to_string(index + 1));
}

int PolicySpec::intFor(std::string_view key, int fallback) const {
  if (!hasKey(key)) return fallback;
  return toInt(numberFor(key, fallback),
               "argument '" + std::string{key} + "'");
}

std::string PolicySpec::keywordFor(std::string_view key,
                                   std::string_view fallback) const {
  const auto it = named_.find(key);
  std::string value{it == named_.end() ? fallback : std::string_view{it->second}};
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return value;
}

void PolicySpec::expectOnly(
    std::size_t max_positional,
    const std::vector<std::string_view>& keys) const {
  if (positional_.size() > max_positional) {
    throw PolicySpecError("policy '" + name_ + "': at most " +
                          std::to_string(max_positional) +
                          " positional argument(s) accepted, got " +
                          std::to_string(positional_.size()));
  }
  for (const auto& [key, value] : named_) {
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      std::string known;
      for (const std::string_view k : keys) {
        if (!known.empty()) known += ", ";
        known += std::string{k};
      }
      throw PolicySpecError("policy '" + name_ + "': unknown argument '" +
                            key + "'" +
                            (known.empty() ? "" : " (accepted: " + known + ")"));
    }
  }
}

PolicyRegistry& PolicyRegistry::global() {
  static PolicyRegistry registry;
  return registry;
}

const PolicyRuntime& PolicyRuntime::defaultRuntime() {
  static const PolicyRuntime runtime;
  return runtime;
}

void PolicyRegistry::add(PolicyInfo info, Builder builder) {
  if (info.name.empty() || !builder) {
    throw std::logic_error("policy registration needs a name and a builder");
  }
  const std::string name = info.name;
  if (!entries_.emplace(name, Entry{std::move(info), std::move(builder)})
           .second) {
    throw std::logic_error("policy '" + name + "' registered twice");
  }
}

bool PolicyRegistry::contains(std::string_view name) const noexcept {
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iterates in sorted order
}

const PolicyInfo& PolicyRegistry::info(std::string_view name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw PolicySpecError("unknown policy '" + std::string{name} + "'");
  }
  return it->second.info;
}

ControllerFactory PolicyRegistry::makeFactory(std::string_view spec) const {
  const PolicySpec parsed = PolicySpec::parse(spec);
  const auto it = entries_.find(parsed.name());
  if (it == entries_.end()) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += "|";
      known += n;
    }
    throw PolicySpecError("unknown policy '" + parsed.name() + "' (" + known +
                          ")");
  }
  return it->second.builder(parsed);
}

std::unique_ptr<AdmissionController> PolicyRegistry::makeController(
    std::string_view spec, const HexNetwork& network) const {
  return makeFactory(spec)(network);
}

std::string PolicyRegistry::describeAll() const {
  std::ostringstream os;
  for (const auto& [name, entry] : entries_) {
    os << "  " << entry.info.params_doc << "\n      " << entry.info.summary
       << "\n";
  }
  return os.str();
}

}  // namespace facs::cellular
