#pragma once
/// \file call.hpp
/// Call requests and call lifecycle states.

#include <cstdint>
#include <string_view>

#include "cellular/geometry.hpp"
#include "cellular/traffic.hpp"

namespace facs::cellular {

using CallId = std::uint64_t;
using CellId = std::uint32_t;
using UserId = std::uint64_t;

inline constexpr CellId kInvalidCell = static_cast<CellId>(-1);

/// Lifecycle of a call in the simulator.
enum class CallState : std::uint8_t {
  Requested,  ///< Created, awaiting the admission decision.
  Active,     ///< Admitted and consuming bandwidth.
  Completed,  ///< Ended normally.
  Blocked,    ///< New-call request denied.
  Dropped,    ///< Active call lost at handoff (no capacity in target cell).
};

[[nodiscard]] std::string_view toString(CallState s) noexcept;

/// What the controller knows about the requesting user at decision time —
/// exactly the paper's FLC1 measurement vector, as produced by the GPS
/// estimator (Section 3: "The user movement is obtained by GPS and the
/// fuzzy decision is based on the user speed, angle and distance from the
/// Base Station").
struct UserSnapshot {
  double speed_kmh = 0.0;    ///< S in [0, 120].
  double angle_deg = 0.0;    ///< A in (-180, 180]; 0 = moving toward the BS.
  double distance_km = 0.0;  ///< D in [0, 10].
  Vec2 position{};           ///< Raw position (for multi-cell simulations).
};

/// An admission request presented to a CAC policy.
struct CallRequest {
  CallId call = 0;
  UserId user = 0;
  ServiceClass service = ServiceClass::Text;
  BandwidthUnits demand_bu = 1;
  UserSnapshot snapshot{};
  CellId target_cell = kInvalidCell;
  bool is_handoff = false;  ///< Handoffs are dropping- not blocking-events.
  int priority = 0;         ///< Paper future-work hook; 0 = none.
};

}  // namespace facs::cellular
