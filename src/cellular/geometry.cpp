#include "cellular/geometry.hpp"

#include <algorithm>
#include <array>

namespace facs::cellular {

double normalizeAngleDeg(double deg) noexcept {
  double a = std::fmod(deg, 360.0);
  if (a <= -180.0) a += 360.0;
  if (a > 180.0) a -= 360.0;
  return a;
}

Vec2 headingVector(double heading_deg) noexcept {
  const double rad = degToRad(heading_deg);
  return {std::cos(rad), std::sin(rad)};
}

double bearingDeg(Vec2 from, Vec2 to) noexcept {
  const Vec2 d = to - from;
  if (d.x == 0.0 && d.y == 0.0) return 0.0;
  return radToDeg(std::atan2(d.y, d.x));
}

double headingDeviationDeg(double heading_deg, Vec2 from,
                           Vec2 target) noexcept {
  return normalizeAngleDeg(heading_deg - bearingDeg(from, target));
}

namespace {
constexpr std::array<HexCoord, 6> kNeighborOffsets{{
    {+1, 0}, {+1, -1}, {0, -1}, {-1, 0}, {-1, +1}, {0, +1}}};
}  // namespace

int hexDistance(HexCoord a, HexCoord b) noexcept {
  const int dq = a.q - b.q;
  const int dr = a.r - b.r;
  const int ds = hexS(a) - hexS(b);
  return (std::abs(dq) + std::abs(dr) + std::abs(ds)) / 2;
}

std::vector<HexCoord> hexNeighbors(HexCoord h) {
  std::vector<HexCoord> out;
  out.reserve(kNeighborOffsets.size());
  for (const HexCoord& o : kNeighborOffsets) {
    out.push_back({h.q + o.q, h.r + o.r});
  }
  return out;
}

Vec2 hexCenter(HexCoord h, double cell_radius_km) noexcept {
  // Pointy-top axial -> pixel (Red Blob Games convention).
  const double sqrt3 = std::sqrt(3.0);
  return {cell_radius_km * (sqrt3 * h.q + sqrt3 / 2.0 * h.r),
          cell_radius_km * (1.5 * h.r)};
}

HexCoord pointToHex(Vec2 p, double cell_radius_km) noexcept {
  const double sqrt3 = std::sqrt(3.0);
  const double qf = (sqrt3 / 3.0 * p.x - 1.0 / 3.0 * p.y) / cell_radius_km;
  const double rf = (2.0 / 3.0 * p.y) / cell_radius_km;
  const double sf = -qf - rf;

  // Cube rounding.
  double q = std::round(qf);
  double r = std::round(rf);
  double s = std::round(sf);
  const double dq = std::abs(q - qf);
  const double dr = std::abs(r - rf);
  const double ds = std::abs(s - sf);
  if (dq > dr && dq > ds) {
    q = -r - s;
  } else if (dr > ds) {
    r = -q - s;
  }
  return {static_cast<int>(q), static_cast<int>(r)};
}

std::vector<HexCoord> hexDisk(int rings) {
  std::vector<HexCoord> out;
  if (rings < 0) return out;
  out.push_back({0, 0});
  for (int ring = 1; ring <= rings; ++ring) {
    // Start at the "W * ring" corner and walk the six sides.
    HexCoord h{-ring, ring};
    for (const HexCoord& dir : kNeighborOffsets) {
      for (int step = 0; step < ring; ++step) {
        out.push_back(h);
        h = {h.q + dir.q, h.r + dir.r};
      }
    }
  }
  return out;
}

}  // namespace facs::cellular
