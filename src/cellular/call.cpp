#include "cellular/call.hpp"

namespace facs::cellular {

std::string_view toString(CallState s) noexcept {
  switch (s) {
    case CallState::Requested:
      return "requested";
    case CallState::Active:
      return "active";
    case CallState::Completed:
      return "completed";
    case CallState::Blocked:
      return "blocked";
    case CallState::Dropped:
      return "dropped";
  }
  return "requested";
}

}  // namespace facs::cellular
