#pragma once
/// \file policy_registry.hpp
/// The pluggable admission-policy registry: maps textual policy specs such
/// as `"facs"`, `"guard:8"`, `"threshold:38,30,20"` or
/// `"facs:tau=0.25,ops=prod"` to controller factories, so the CLI, the
/// benches and the examples can name policies without linking their
/// construction logic.
///
/// Spec grammar:
///
///     spec      := name [ ":" arg { "," arg } ]
///     arg       := value | key "=" value
///
/// Positional and named arguments may be mixed; what each policy accepts is
/// documented by its registry entry (`PolicyRegistry::describeAll()`, or
/// `facs_cli --list-policies`).
///
/// Policies register themselves: each policy translation unit defines a
/// file-local `PolicyRegistrar` whose constructor runs at static
/// initialization. The build links the library as a CMake OBJECT library so
/// no policy TU (and hence no registrar) is ever dropped by the linker.
///
/// Registrars populate the *seed* registry (`PolicyRegistry::global()`).
/// Call sites resolve specs through a `PolicyRuntime` — an instance-scoped
/// snapshot of the seed that embedders and tests can extend with
/// `registerExternal()` without touching the process-wide state.

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "cellular/admission.hpp"

namespace facs::cellular {

class HexNetwork;

/// Builds a fresh admission controller for a run. Receives the network so
/// topology-aware policies (SCC, predictive reservation, SIR) can hold a
/// reference to it. `sim::ControllerFactory` is an alias of this type.
using ControllerFactory =
    std::function<std::unique_ptr<AdmissionController>(const HexNetwork&)>;

/// Raised for an unknown policy name or a malformed parameter. The CLI
/// converts these into `CliError`s verbatim, so messages name the offending
/// spec fragment.
class PolicySpecError : public std::runtime_error {
 public:
  explicit PolicySpecError(const std::string& message)
      : std::runtime_error(message) {}
};

/// A parsed policy spec: the policy name plus its positional and named
/// arguments. The accessor helpers throw PolicySpecError with the policy
/// name attached, so registered builders can consume arguments without
/// hand-rolling error messages.
class PolicySpec {
 public:
  /// Parses `name[:arg,...]`. \throws PolicySpecError on an empty name,
  /// empty argument or malformed `key=` fragment.
  [[nodiscard]] static PolicySpec parse(std::string_view text);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Number of positional arguments.
  [[nodiscard]] std::size_t positionalCount() const noexcept {
    return positional_.size();
  }
  [[nodiscard]] bool hasKey(std::string_view key) const noexcept;

  /// Positional argument \p index as a number, or \p fallback when absent.
  [[nodiscard]] double numberAt(std::size_t index, double fallback) const;

  /// Named argument as a number, or \p fallback when absent.
  [[nodiscard]] double numberFor(std::string_view key, double fallback) const;

  /// Like numberAt/numberFor, but reject fractional values instead of
  /// silently truncating — "guard:8.5" is a typo, not guard:8.
  [[nodiscard]] int intAt(std::size_t index, int fallback) const;
  [[nodiscard]] int intFor(std::string_view key, int fallback) const;

  /// Named argument as a lower-case keyword, or \p fallback when absent.
  [[nodiscard]] std::string keywordFor(std::string_view key,
                                       std::string_view fallback) const;

  /// \throws PolicySpecError if more than \p max positional arguments or a
  /// named argument outside \p keys was supplied — catches typos like
  /// `facs:tua=0.2` instead of silently ignoring them.
  void expectOnly(std::size_t max_positional,
                  const std::vector<std::string_view>& keys) const;

 private:
  [[nodiscard]] double toNumber(const std::string& value,
                                std::string_view what) const;
  [[nodiscard]] int toInt(double value, std::string_view what) const;

  std::string name_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string, std::less<>> named_;
};

/// Registry entry: documentation plus the spec -> factory builder.
struct PolicyInfo {
  std::string name;        ///< Canonical spec name, e.g. "guard".
  std::string summary;     ///< One line for --list-policies.
  std::string params_doc;  ///< Accepted arguments, e.g. "guard:G  (G >= 0)".
};

/// String-keyed factory of admission-policy factories.
///
/// Thread-compatible: registration happens during static initialization
/// (single-threaded); all queries afterwards are const. Copyable on
/// purpose — `PolicyRuntime` snapshots the seed registry per instance.
class PolicyRegistry {
 public:
  /// Turns a parsed spec into a ControllerFactory.
  /// Builders validate parameters eagerly and throw PolicySpecError, so a
  /// bad spec fails at parse time, not mid-simulation.
  using Builder = std::function<ControllerFactory(const PolicySpec&)>;

  /// The process-wide SEED registry all `PolicyRegistrar`s register into.
  /// Resolve specs through a `PolicyRuntime` (which snapshots this seed)
  /// instead of querying the global directly — only registrars and tests
  /// should touch it.
  [[nodiscard]] static PolicyRegistry& global();

  /// Registers a policy. \throws std::logic_error on a duplicate name.
  void add(PolicyInfo info, Builder builder);

  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  /// Sorted canonical names of every registered policy.
  [[nodiscard]] std::vector<std::string> names() const;
  /// Documentation of one policy. \throws PolicySpecError when unknown.
  [[nodiscard]] const PolicyInfo& info(std::string_view name) const;

  /// Parses \p spec and builds the factory.
  /// \throws PolicySpecError on an unknown name or malformed parameters.
  [[nodiscard]] ControllerFactory makeFactory(std::string_view spec) const;

  /// Convenience: makeFactory(spec) applied to \p network immediately.
  [[nodiscard]] std::unique_ptr<AdmissionController> makeController(
      std::string_view spec, const HexNetwork& network) const;

  /// Multi-line human-readable dump of every entry (--list-policies).
  [[nodiscard]] std::string describeAll() const;

 private:
  struct Entry {
    PolicyInfo info;
    Builder builder;
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Self-registration helper: define one per policy at namespace scope in
/// the policy's own translation unit.
class PolicyRegistrar {
 public:
  PolicyRegistrar(PolicyInfo info, PolicyRegistry::Builder builder) {
    PolicyRegistry::global().add(std::move(info), std::move(builder));
  }
};

/// An instance-scoped policy runtime: owns a snapshot of the registrar
/// seed plus any policies added through `registerExternal()`. Two runtimes
/// never share mutable state, so an embedding API can load plugin policies
/// per run (or a test can inject fakes) without touching the process-wide
/// seed or other runtimes.
///
/// Thread-compatible like `PolicyRegistry`: construct and extend a runtime
/// from one thread, then query it from as many as you like (makeFactory,
/// makeController and the introspection calls are const). Constructing
/// runtimes concurrently is safe — the seed is immutable after static
/// initialization.
class PolicyRuntime {
 public:
  /// Snapshots the registrar-seeded process registry.
  PolicyRuntime() : registry_{PolicyRegistry::global()} {}
  /// Starts from a caller-provided registry instead of the seed (tests,
  /// or embedders that want a fully curated policy set).
  explicit PolicyRuntime(PolicyRegistry seed) : registry_{std::move(seed)} {}

  /// A shared default-seeded instance for call sites with no runtime of
  /// their own (the CLI default, the benches). Never extended — equivalent
  /// to a freshly constructed PolicyRuntime.
  [[nodiscard]] static const PolicyRuntime& defaultRuntime();

  /// Extension point: adds a policy to THIS runtime only. The seed and
  /// every other runtime are unaffected. \throws std::logic_error on a
  /// duplicate name (including clashes with a built-in policy).
  void registerExternal(PolicyInfo info, PolicyRegistry::Builder builder) {
    registry_.add(std::move(info), std::move(builder));
  }

  /// The underlying snapshot (for introspection; const — mutate only
  /// through registerExternal()).
  [[nodiscard]] const PolicyRegistry& registry() const noexcept {
    return registry_;
  }

  /// \name Resolution pass-throughs (see PolicyRegistry)
  ///@{
  [[nodiscard]] bool contains(std::string_view name) const noexcept {
    return registry_.contains(name);
  }
  [[nodiscard]] std::vector<std::string> names() const {
    return registry_.names();
  }
  [[nodiscard]] const PolicyInfo& info(std::string_view name) const {
    return registry_.info(name);
  }
  [[nodiscard]] ControllerFactory makeFactory(std::string_view spec) const {
    return registry_.makeFactory(spec);
  }
  [[nodiscard]] std::unique_ptr<AdmissionController> makeController(
      std::string_view spec, const HexNetwork& network) const {
    return registry_.makeController(spec, network);
  }
  [[nodiscard]] std::string describeAll() const {
    return registry_.describeAll();
  }
  ///@}

 private:
  PolicyRegistry registry_;
};

}  // namespace facs::cellular
