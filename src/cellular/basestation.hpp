#pragma once
/// \file basestation.hpp
/// A base station's bandwidth ledger. Admission policies consult it; the
/// simulator mutates it. The ledger enforces the capacity invariant: the
/// sum of live allocations never exceeds capacity.

#include <unordered_map>

#include "cellular/call.hpp"
#include "cellular/traffic.hpp"

namespace facs::cellular {

/// Per-call bandwidth allocation record.
struct Allocation {
  BandwidthUnits bu = 0;
  bool real_time = false;
};

/// Bandwidth accounting for one base station, split into the paper's
/// differentiated-service counters: RTC (Real-Time Counter — voice, video)
/// and NRTC (Non-Real-Time Counter — text). The paper's FLC2 input
/// "Counter state (Cs), which shows the capacity of the system" is
/// occupiedBu() = RTC + NRTC.
class BaseStation {
 public:
  /// \throws std::invalid_argument if capacity is not positive.
  explicit BaseStation(CellId cell, BandwidthUnits capacity_bu);

  [[nodiscard]] CellId cell() const noexcept { return cell_; }
  [[nodiscard]] BandwidthUnits capacityBu() const noexcept { return capacity_; }
  [[nodiscard]] BandwidthUnits occupiedBu() const noexcept {
    return rtc_ + nrtc_;
  }
  [[nodiscard]] BandwidthUnits freeBu() const noexcept {
    return capacity_ - occupiedBu();
  }
  /// Real-Time Counter: BUs held by voice/video calls.
  [[nodiscard]] BandwidthUnits rtc() const noexcept { return rtc_; }
  /// Non-Real-Time Counter: BUs held by text calls.
  [[nodiscard]] BandwidthUnits nrtc() const noexcept { return nrtc_; }
  [[nodiscard]] std::size_t activeCalls() const noexcept {
    return ledger_.size();
  }
  [[nodiscard]] bool carries(CallId call) const noexcept {
    return ledger_.contains(call);
  }
  /// Occupancy as a fraction of capacity in [0, 1].
  [[nodiscard]] double utilization() const noexcept {
    return static_cast<double>(occupiedBu()) / static_cast<double>(capacity_);
  }

  /// True iff \p bu more units fit right now.
  [[nodiscard]] bool canFit(BandwidthUnits bu) const noexcept {
    return bu >= 0 && bu <= freeBu();
  }

  /// Records an allocation.
  /// \throws std::invalid_argument on non-positive demand or duplicate call.
  /// \throws std::logic_error if the allocation would exceed capacity
  ///         (callers must check canFit() — admission happens first).
  void allocate(CallId call, BandwidthUnits bu, bool real_time);

  /// Releases a call's allocation.
  /// \throws std::invalid_argument if the call holds no allocation here.
  void release(CallId call);

  /// Allocation record for an active call.
  /// \throws std::invalid_argument if absent.
  [[nodiscard]] const Allocation& allocation(CallId call) const;

 private:
  CellId cell_;
  BandwidthUnits capacity_;
  BandwidthUnits rtc_ = 0;
  BandwidthUnits nrtc_ = 0;
  std::unordered_map<CallId, Allocation> ledger_;
};

}  // namespace facs::cellular
