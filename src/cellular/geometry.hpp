#pragma once
/// \file geometry.hpp
/// Planar geometry and hexagonal-grid math for the cellular substrate.
///
/// Conventions:
///  * distances in kilometres, angles in degrees;
///  * headings are compass-free math angles: 0 deg = +x axis, counter-
///    clockwise positive, normalized to (-180, 180];
///  * the paper's "user Angle (A)" is the signed deviation between the
///    user's heading and the bearing from the user to the base station
///    (0 = heading straight at the BS, +/-180 = moving directly away).

#include <cmath>
#include <cstddef>
#include <vector>

namespace facs::cellular {

inline constexpr double kPi = 3.14159265358979323846;

[[nodiscard]] constexpr double degToRad(double deg) noexcept {
  return deg * kPi / 180.0;
}
[[nodiscard]] constexpr double radToDeg(double rad) noexcept {
  return rad * 180.0 / kPi;
}

/// Normalizes an angle in degrees to (-180, 180].
[[nodiscard]] double normalizeAngleDeg(double deg) noexcept;

/// 2-D point / vector in kilometres.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  friend constexpr bool operator==(const Vec2&, const Vec2&) = default;

  [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }
  [[nodiscard]] double distanceTo(Vec2 o) const noexcept {
    return (*this - o).norm();
  }
};

/// Unit vector for a heading in degrees.
[[nodiscard]] Vec2 headingVector(double heading_deg) noexcept;

/// Math-angle (degrees) of the vector from \p from to \p to.
[[nodiscard]] double bearingDeg(Vec2 from, Vec2 to) noexcept;

/// Signed deviation in (-180, 180] between a heading and the bearing from
/// \p from to \p target: 0 means moving straight at the target; negative
/// values mean the target lies to the right of the travel direction.
[[nodiscard]] double headingDeviationDeg(double heading_deg, Vec2 from,
                                         Vec2 target) noexcept;

/// Axial coordinates of a pointy-top hexagonal cell.
struct HexCoord {
  int q = 0;
  int r = 0;
  friend constexpr bool operator==(const HexCoord&, const HexCoord&) = default;
};

/// Hex s-coordinate (cube constraint q + r + s = 0).
[[nodiscard]] constexpr int hexS(HexCoord h) noexcept { return -h.q - h.r; }

/// Grid distance between two hexes (number of cell hops).
[[nodiscard]] int hexDistance(HexCoord a, HexCoord b) noexcept;

/// The six neighbours of a hex, in fixed order (E, NE, NW, W, SW, SE).
[[nodiscard]] std::vector<HexCoord> hexNeighbors(HexCoord h);

/// Centre of a pointy-top hex with circumradius \p cell_radius_km.
[[nodiscard]] Vec2 hexCenter(HexCoord h, double cell_radius_km) noexcept;

/// Hex containing a planar point (inverse of hexCenter, with rounding).
[[nodiscard]] HexCoord pointToHex(Vec2 p, double cell_radius_km) noexcept;

/// All hexes within \p rings grid hops of the origin, origin first, then by
/// increasing ring; count is hexDiskCellCount(rings).
[[nodiscard]] std::vector<HexCoord> hexDisk(int rings);

/// Number of cells in a hexDisk of \p rings: the centred hexagonal numbers.
[[nodiscard]] constexpr int hexDiskCellCount(int rings) noexcept {
  return 1 + 3 * rings * (rings + 1);
}

}  // namespace facs::cellular
