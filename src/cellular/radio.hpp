#pragma once
/// \file radio.hpp
/// A simple radio layer for the cellular substrate: log-distance path loss
/// with log-normal shadowing and downlink SIR estimation across co-channel
/// cells. This backs the SIR-based admission baseline (`cac::SirController`)
/// — the interference/power-control CAC family the paper's Section 1 cites
/// ([2] Wang et al., [6] Xiao et al.) — and gives examples a physically
/// grounded signal model.
///
/// The interference sum is the hot path (one term per co-channel cell per
/// admission decision), so the model precomputes everything that depends
/// only on its immutable RadioConfig at construction:
///
///  * **Gain constant.** The log-distance chain
///    `dbmToMw(tx − PL0 − 10·n·log10(d/d0))` factors into `C · d^−n` with
///    `C = dbmToMw(tx − PL0 + 10·n·log10(d0))` — one `pow` per interferer
///    instead of a `log10` + `pow` round trip, and `d^−n = (d²)^(−n/2)`
///    drops the `hypot`/`sqrt` too. Tx power and path loss are network-wide
///    here (reuse-1, uniform sites), so C is a single scalar rather than
///    the per-cell table a heterogeneous deployment would need.
///  * **Interferer tables.** Per serving cell, the ids of the co-channel
///    cells in its interference footprint as one flat SoA walk (ids +
///    station coordinates), in ascending id order — the same summation
///    order as iterating `network.cells()`, so the footprint-bounded walk
///    at radius 0 reproduces the naive loop's floating-point sum exactly.
///  * **Truncated-tail bound.** When the footprint is bounded
///    (`interference_radius_hops > 0`), a worst-case bound on the
///    interference the truncation can ever discard (every excluded cell
///    fully utilized, the user at its closest possible approach), so
///    callers can audit the approximation instead of trusting it.
///
/// Units: distances km, powers dBm, gains/losses dB.

#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "cellular/geometry.hpp"
#include "cellular/network.hpp"

namespace facs::cellular {

/// Log-distance path-loss model: PL(d) = PL0 + 10 n log10(d / d0), with
/// optional log-normal shadowing sigma. Defaults describe the rural/
/// suburban macro deployment the paper's 10 km cells imply (a 2 GHz urban
/// profile would leave the edge of such a cell noise-limited and dead):
/// PL0 = 100 dB at 1 km, exponent 3.5, so a 43 dBm site still delivers
/// ~12 dB SNR at the 10 km edge and co-channel neighbours dominate noise.
struct PathLossParams {
  double reference_loss_db = 100.0;  ///< PL0 at d0 (rural macro, sub-GHz-ish).
  double reference_distance_km = 1.0;
  double exponent = 3.5;             ///< n; free space = 2, dense urban ~4.
  double shadowing_sigma_db = 8.0;   ///< 0 disables shadowing.
  double min_distance_km = 0.01;     ///< Clamp to avoid the d -> 0 pole.
};

/// Deterministic part of the path loss at distance \p d_km.
/// \throws std::invalid_argument for negative distance.
[[nodiscard]] double pathLossDb(const PathLossParams& params, double d_km);

/// Path loss with one shadowing realization drawn from \p rng.
[[nodiscard]] double shadowedPathLossDb(const PathLossParams& params,
                                        double d_km, std::mt19937_64& rng);

/// Configuration of the downlink radio model.
struct RadioConfig {
  PathLossParams path_loss{};
  double tx_power_dbm = 43.0;      ///< Typical macro BS.
  double noise_floor_dbm = -104.0; ///< Thermal noise over 10 MHz-ish.
  /// Interference activity factor in [0, 1]: fraction of each interfering
  /// cell's power that is actually radiated, scaled by the cell's
  /// bandwidth utilization at evaluation time.
  double activity_factor = 1.0;
  /// Interference footprint: only cells within this many hex hops of the
  /// serving cell enter the interference sum. 0 (the default) keeps the
  /// exact whole-network sum. Bounding the footprint is an approximation —
  /// interference falls as d^−n, so the discarded tail is small and its
  /// worst case is computable (truncationTailBoundMw()) — and it is what
  /// makes the SIR read set partition-confinable.
  int interference_radius_hops = 0;
};

/// Downlink radio snapshot of one network: every base station transmits at
/// a fixed power on the same channel (reuse-1), and a user's SIR is the
/// serving-cell signal over the sum of all other cells' signals plus
/// thermal noise.
///
/// The gain constant and per-serving-cell interferer tables are derived
/// from the RadioConfig once, at construction; the config is immutable for
/// the model's lifetime, so the tables never go stale.
class RadioModel {
 public:
  using Config = RadioConfig;

  /// \param network not owned; must outlive the model.
  /// \throws std::invalid_argument on nonsensical config.
  RadioModel(const HexNetwork& network, Config config = {});

  /// Received power (dBm) at \p position from \p cell with deterministic
  /// path loss (no shadowing).
  [[nodiscard]] double receivedPowerDbm(Vec2 position, CellId cell) const;

  /// Downlink SINR (dB) at \p position served by \p serving_cell.
  /// Interference from each other cell in the footprint is weighted by that
  /// cell's current utilization (an idle cell does not interfere).
  [[nodiscard]] double sinrDb(Vec2 position, CellId serving_cell) const;

  /// As sinrDb(), but reading each interferer's utilization through
  /// \p util (CellId -> utilization in [0, 1]) instead of the live station
  /// ledgers. This is the partition-aware hook: a GroupLocal policy passes
  /// a functor that reads own-group cells live and foreign cells from its
  /// barrier snapshot. The interferer set, walk order and arithmetic are
  /// identical to sinrDb() — only the utilization values differ, so a
  /// functor returning live utilizations reproduces sinrDb() bit-for-bit.
  template <class UtilFn>
  [[nodiscard]] double sinrDbWith(Vec2 position, CellId serving_cell,
                                  UtilFn&& util) const {
    const double signal_mw = linkPowerMw(position, serving_cell, 0.0);
    double interference_mw = noise_mw_;
    const std::uint32_t begin = interferer_offsets_[serving_cell];
    const std::uint32_t end = interferer_offsets_[serving_cell + 1];
    for (std::uint32_t k = begin; k != end; ++k) {
      const CellId cell = interferer_ids_[k];
      const double activity = config_.activity_factor * util(cell);
      if (activity <= 0.0) continue;
      const double dx = position.x - station_x_[k];
      const double dy = position.y - station_y_[k];
      const double d2 = std::max(dx * dx + dy * dy, min_distance_sq_);
      interference_mw +=
          activity * gain_const_mw_ * std::pow(d2, neg_half_exponent_);
    }
    return linearToDbFast(signal_mw / interference_mw);
  }

  /// As sinrDb(), with per-link shadowing drawn from \p rng.
  [[nodiscard]] double shadowedSinrDb(Vec2 position, CellId serving_cell,
                                      std::mt19937_64& rng) const;

  /// Ids of the cells in \p serving_cell's interference footprint, in
  /// ascending id order (the canonical summation order). The whole network
  /// minus the serving cell at radius 0.
  [[nodiscard]] std::span<const CellId> interferersOf(
      CellId serving_cell) const {
    return {interferer_ids_.data() + interferer_offsets_[serving_cell],
            interferer_ids_.data() + interferer_offsets_[serving_cell + 1]};
  }

  /// Worst case on the interference power (mW) the bounded footprint can
  /// discard, over every serving cell and every user position inside it:
  /// each excluded cell at full activity, the user at the excluded
  /// station's closest possible approach (cell edge toward it). 0 when the
  /// footprint is unbounded. Compare against noiseFloorMw(): a tail far
  /// below the noise floor cannot move any SINR comparison that noise
  /// itself does not already dominate.
  [[nodiscard]] double truncationTailBoundMw() const noexcept {
    return tail_bound_mw_;
  }

  /// Thermal noise floor in linear mW (the constant term of every
  /// interference sum).
  [[nodiscard]] double noiseFloorMw() const noexcept { return noise_mw_; }

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const HexNetwork& network() const noexcept { return network_; }

 private:
  [[nodiscard]] double linkPowerMw(Vec2 position, CellId cell,
                                   double extra_loss_db) const;
  /// linearToDb without the function-call indirection (kept private so the
  /// public helper below stays the single documented entry point).
  [[nodiscard]] static double linearToDbFast(double linear) noexcept {
    return 10.0 * std::log10(linear);
  }
  void buildTables();

  const HexNetwork& network_;
  Config config_;

  // Derived once from config_ at construction.
  double gain_const_mw_ = 0.0;      ///< C in power_mw = C * d^-n.
  double neg_half_exponent_ = 0.0;  ///< -n/2, for (d^2)^(-n/2).
  double min_distance_sq_ = 0.0;    ///< Clamp for the d -> 0 pole, squared.
  double noise_mw_ = 0.0;           ///< dbmToMw(noise_floor_dbm).
  double tail_bound_mw_ = 0.0;      ///< See truncationTailBoundMw().

  // Flat per-serving-cell interferer tables: for serving cell s, entries
  // [interferer_offsets_[s], interferer_offsets_[s+1]) of interferer_ids_
  // (ascending) and the matching station coordinates (SoA, indexed by the
  // same k — no second indirection through the network in the hot loop).
  std::vector<std::uint32_t> interferer_offsets_;
  std::vector<CellId> interferer_ids_;
  std::vector<double> station_x_;
  std::vector<double> station_y_;
};

/// dB <-> linear helpers.
[[nodiscard]] double dbToLinear(double db) noexcept;
[[nodiscard]] double linearToDb(double linear) noexcept;
[[nodiscard]] double dbmToMw(double dbm) noexcept;
[[nodiscard]] double mwToDbm(double mw) noexcept;

}  // namespace facs::cellular
