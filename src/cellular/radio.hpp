#pragma once
/// \file radio.hpp
/// A simple radio layer for the cellular substrate: log-distance path loss
/// with log-normal shadowing and downlink SIR estimation across co-channel
/// cells. This backs the SIR-based admission baseline (`cac::SirController`)
/// — the interference/power-control CAC family the paper's Section 1 cites
/// ([2] Wang et al., [6] Xiao et al.) — and gives examples a physically
/// grounded signal model.
///
/// Units: distances km, powers dBm, gains/losses dB.

#include <random>

#include "cellular/geometry.hpp"
#include "cellular/network.hpp"

namespace facs::cellular {

/// Log-distance path-loss model: PL(d) = PL0 + 10 n log10(d / d0), with
/// optional log-normal shadowing sigma. Defaults describe the rural/
/// suburban macro deployment the paper's 10 km cells imply (a 2 GHz urban
/// profile would leave the edge of such a cell noise-limited and dead):
/// PL0 = 100 dB at 1 km, exponent 3.5, so a 43 dBm site still delivers
/// ~12 dB SNR at the 10 km edge and co-channel neighbours dominate noise.
struct PathLossParams {
  double reference_loss_db = 100.0;  ///< PL0 at d0 (rural macro, sub-GHz-ish).
  double reference_distance_km = 1.0;
  double exponent = 3.5;             ///< n; free space = 2, dense urban ~4.
  double shadowing_sigma_db = 8.0;   ///< 0 disables shadowing.
  double min_distance_km = 0.01;     ///< Clamp to avoid the d -> 0 pole.
};

/// Deterministic part of the path loss at distance \p d_km.
/// \throws std::invalid_argument for negative distance.
[[nodiscard]] double pathLossDb(const PathLossParams& params, double d_km);

/// Path loss with one shadowing realization drawn from \p rng.
[[nodiscard]] double shadowedPathLossDb(const PathLossParams& params,
                                        double d_km, std::mt19937_64& rng);

/// Configuration of the downlink radio model.
struct RadioConfig {
  PathLossParams path_loss{};
  double tx_power_dbm = 43.0;      ///< Typical macro BS.
  double noise_floor_dbm = -104.0; ///< Thermal noise over 10 MHz-ish.
  /// Interference activity factor in [0, 1]: fraction of each interfering
  /// cell's power that is actually radiated, scaled by the cell's
  /// bandwidth utilization at evaluation time.
  double activity_factor = 1.0;
};

/// Downlink radio snapshot of one network: every base station transmits at
/// a fixed power on the same channel (reuse-1), and a user's SIR is the
/// serving-cell signal over the sum of all other cells' signals plus
/// thermal noise.
class RadioModel {
 public:
  using Config = RadioConfig;

  /// \param network not owned; must outlive the model.
  /// \throws std::invalid_argument on nonsensical config.
  RadioModel(const HexNetwork& network, Config config = {});

  /// Received power (dBm) at \p position from \p cell with deterministic
  /// path loss (no shadowing).
  [[nodiscard]] double receivedPowerDbm(Vec2 position, CellId cell) const;

  /// Downlink SINR (dB) at \p position served by \p serving_cell.
  /// Interference from each other cell is weighted by that cell's current
  /// utilization (an idle cell does not interfere).
  [[nodiscard]] double sinrDb(Vec2 position, CellId serving_cell) const;

  /// As sinrDb(), with per-link shadowing drawn from \p rng.
  [[nodiscard]] double shadowedSinrDb(Vec2 position, CellId serving_cell,
                                      std::mt19937_64& rng) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double linkPowerMw(Vec2 position, CellId cell,
                                   double extra_loss_db) const;

  const HexNetwork& network_;
  Config config_;
};

/// dB <-> linear helpers.
[[nodiscard]] double dbToLinear(double db) noexcept;
[[nodiscard]] double linearToDb(double linear) noexcept;
[[nodiscard]] double dbmToMw(double dbm) noexcept;
[[nodiscard]] double mwToDbm(double mw) noexcept;

}  // namespace facs::cellular
