#pragma once
/// \file network.hpp
/// A hexagonal cellular layout: cells, their base stations and adjacency.

#include <optional>
#include <utility>
#include <vector>

#include "cellular/basestation.hpp"
#include "cellular/geometry.hpp"

namespace facs::cellular {

/// Per-cell deviation from the network's uniform base-station capacity
/// (heterogeneous deployments: a stadium mast with extra carriers next to
/// thin precinct cells). Scenario files spell these as `[cell N]` sections.
using CellCapacityOverride = std::pair<CellId, BandwidthUnits>;

/// One cell of the network.
struct Cell {
  CellId id = 0;
  HexCoord coord{};
  Vec2 center{};
};

/// A hexagonal disk of cells around a centre cell, each with its own base
/// station. The paper's evaluation uses a single BS (rings = 0, 40 BU,
/// 10 km radius); multi-ring networks support the SCC baseline and the
/// handoff experiments.
class HexNetwork {
 public:
  /// \param rings        number of rings around the centre cell (>= 0).
  /// \param cell_radius_km hex circumradius; the paper's user-to-BS
  ///                      distances span 0-10 km, so the default is 10.
  /// \param capacity_bu  per-BS capacity (paper: 40 BU).
  /// \param capacity_overrides per-cell capacities replacing the uniform
  ///                      \p capacity_bu for the named cells.
  /// \throws std::invalid_argument on negative rings, non-positive radius,
  ///         an override naming a cell outside the disk, a duplicate
  ///         override or a non-positive override capacity.
  HexNetwork(int rings, double cell_radius_km = 10.0,
             BandwidthUnits capacity_bu = kPaperCellCapacityBu,
             const std::vector<CellCapacityOverride>& capacity_overrides = {});

  [[nodiscard]] std::size_t cellCount() const noexcept { return cells_.size(); }
  [[nodiscard]] double cellRadiusKm() const noexcept { return cell_radius_km_; }
  [[nodiscard]] const Cell& cell(CellId id) const { return cells_.at(id); }
  [[nodiscard]] const std::vector<Cell>& cells() const noexcept {
    return cells_;
  }
  [[nodiscard]] BaseStation& station(CellId id) { return stations_.at(id); }
  [[nodiscard]] const BaseStation& station(CellId id) const {
    return stations_.at(id);
  }

  /// Cell containing a planar point, if any cell of the disk does.
  [[nodiscard]] std::optional<CellId> cellAt(Vec2 position) const;

  /// Ids of in-network neighbours of a cell (up to 6).
  [[nodiscard]] const std::vector<CellId>& neighbors(CellId id) const {
    return neighbors_.at(id);
  }

  /// Straight-line distance from a point to a cell's base station.
  [[nodiscard]] double distanceToStationKm(Vec2 position, CellId id) const {
    return position.distanceTo(cell(id).center);
  }

  /// Total occupied and total capacity over all stations.
  [[nodiscard]] BandwidthUnits totalOccupiedBu() const noexcept;
  [[nodiscard]] BandwidthUnits totalCapacityBu() const noexcept;

 private:
  double cell_radius_km_;
  std::vector<Cell> cells_;
  std::vector<BaseStation> stations_;
  std::vector<std::vector<CellId>> neighbors_;
};

/// Deterministic partition of a network's cells into commit groups — the
/// cell-to-lane mapping of the simulator's two-level commit scheme (and, in
/// the paper's terms, the assignment of base stations to coordination
/// domains that exchange inter-BS handoff messages).
///
/// Cells are split into contiguous id ranges. Spiral hex ids make
/// contiguous ranges spatially coherent (whole rings and arcs), so most
/// neighbours land in the same group and most handoffs stay group-local.
/// Two balance criteria share that shape:
///
///  * **Unweighted** (the historical default): near-equal range SIZES —
///    cell c belongs to floor(c * groups / cells). A pure function of
///    (cell count, groups).
///  * **Weighted**: near-equal range WEIGHTS. Given one non-negative load
///    weight per cell (spawn rates, observed commit traffic), boundaries
///    are placed by a greedy cumulative-weight walk so every group carries
///    about total/groups weight — a hotspot cell stops dragging its whole
///    id range into one overloaded lane. A pure function of (weights,
///    groups): still independent of shard count and thread timing.
class CellGroupPartition {
 public:
  /// \param groups requested group count; clamped to [1, cellCount] so a
  ///        partition always exists (empty groups are pointless).
  CellGroupPartition(const HexNetwork& network, int groups);

  /// Weighted variant: contiguous ranges of near-equal total weight.
  /// Deterministic for fixed (weights, groups); every group is non-empty.
  /// \param weights one non-negative finite weight per cell; an all-zero
  ///        vector degrades to uniform weights.
  /// \throws std::invalid_argument on a size mismatch or a negative /
  ///         non-finite weight.
  CellGroupPartition(const HexNetwork& network, int groups,
                     const std::vector<double>& weights);

  /// Effective group count after clamping.
  [[nodiscard]] int groups() const noexcept { return groups_; }

  [[nodiscard]] int groupOf(CellId cell) const {
    return group_of_.at(static_cast<std::size_t>(cell));
  }

  /// True iff the cell and every in-network neighbour share one group —
  /// i.e. any handoff out of this cell commits without a cross-group
  /// reservation.
  [[nodiscard]] bool interior(CellId cell) const {
    return interior_.at(static_cast<std::size_t>(cell));
  }

  /// Cells with at least one neighbour in another group (the inter-BS
  /// boundary where reservations happen).
  [[nodiscard]] std::size_t boundaryCells() const noexcept {
    return boundary_cells_;
  }

 private:
  /// Marks boundary/interior cells from the finished group_of_ mapping.
  void computeInterior(const HexNetwork& network);

  int groups_;
  std::vector<int> group_of_;
  std::vector<bool> interior_;
  std::size_t boundary_cells_ = 0;
};

}  // namespace facs::cellular
