#include "cellular/radio.hpp"

#include <cmath>
#include <stdexcept>

namespace facs::cellular {

double dbToLinear(double db) noexcept { return std::pow(10.0, db / 10.0); }
double linearToDb(double linear) noexcept { return 10.0 * std::log10(linear); }
double dbmToMw(double dbm) noexcept { return dbToLinear(dbm); }
double mwToDbm(double mw) noexcept { return linearToDb(mw); }

double pathLossDb(const PathLossParams& params, double d_km) {
  if (d_km < 0.0) {
    throw std::invalid_argument("path-loss distance must be >= 0");
  }
  const double d = std::max(d_km, params.min_distance_km);
  return params.reference_loss_db +
         10.0 * params.exponent *
             std::log10(d / params.reference_distance_km);
}

double shadowedPathLossDb(const PathLossParams& params, double d_km,
                          std::mt19937_64& rng) {
  double loss = pathLossDb(params, d_km);
  if (params.shadowing_sigma_db > 0.0) {
    std::normal_distribution<double> shadow{0.0, params.shadowing_sigma_db};
    loss += shadow(rng);
  }
  return loss;
}

RadioModel::RadioModel(const HexNetwork& network, Config config)
    : network_{network}, config_{config} {
  if (config_.activity_factor < 0.0 || config_.activity_factor > 1.0) {
    throw std::invalid_argument("activity factor must be in [0, 1]");
  }
  if (!(config_.path_loss.exponent > 0.0)) {
    throw std::invalid_argument("path-loss exponent must be positive");
  }
  if (!(config_.path_loss.min_distance_km > 0.0)) {
    throw std::invalid_argument("minimum path-loss distance must be positive");
  }
  if (config_.interference_radius_hops < 0) {
    throw std::invalid_argument("interference radius must be >= 0 hops");
  }
  buildTables();
}

void RadioModel::buildTables() {
  const PathLossParams& pl = config_.path_loss;
  // PL(d) = PL0 + 10 n log10(d/d0)  =>  rx_dbm = tx - PL0 + 10 n log10(d0)
  // - 10 n log10(d), so in linear mW: rx = C * d^-n with the constant below.
  gain_const_mw_ =
      dbmToMw(config_.tx_power_dbm - pl.reference_loss_db +
              10.0 * pl.exponent * std::log10(pl.reference_distance_km));
  neg_half_exponent_ = -0.5 * pl.exponent;
  min_distance_sq_ = pl.min_distance_km * pl.min_distance_km;
  noise_mw_ = dbmToMw(config_.noise_floor_dbm);

  const std::size_t cells = network_.cellCount();
  const int radius = config_.interference_radius_hops;
  interferer_offsets_.assign(cells + 1, 0);
  interferer_ids_.clear();
  station_x_.clear();
  station_y_.clear();
  interferer_ids_.reserve(cells * (cells - (cells > 0 ? 1 : 0)));

  tail_bound_mw_ = 0.0;
  for (const Cell& serving : network_.cells()) {
    interferer_offsets_[serving.id] =
        static_cast<std::uint32_t>(interferer_ids_.size());
    double tail_mw = 0.0;
    for (const Cell& other : network_.cells()) {
      if (other.id == serving.id) continue;
      const bool in_footprint =
          radius == 0 || hexDistance(serving.coord, other.coord) <= radius;
      if (in_footprint) {
        interferer_ids_.push_back(other.id);
        station_x_.push_back(other.center.x);
        station_y_.push_back(other.center.y);
        continue;
      }
      // Worst case for a discarded interferer: its cell fully utilized and
      // the user at the serving cell's edge toward it — closest approach is
      // the centre distance minus the hex circumradius (clamped at the
      // path-loss pole guard, like every real link).
      const double closest_km =
          std::max(serving.center.distanceTo(other.center) -
                       network_.cellRadiusKm(),
                   pl.min_distance_km);
      tail_mw += config_.activity_factor * gain_const_mw_ *
                 std::pow(closest_km * closest_km, neg_half_exponent_);
    }
    tail_bound_mw_ = std::max(tail_bound_mw_, tail_mw);
  }
  interferer_offsets_[cells] =
      static_cast<std::uint32_t>(interferer_ids_.size());
}

double RadioModel::linkPowerMw(Vec2 position, CellId cell,
                               double extra_loss_db) const {
  const double dx = position.x - network_.cell(cell).center.x;
  const double dy = position.y - network_.cell(cell).center.y;
  const double d2 = std::max(dx * dx + dy * dy, min_distance_sq_);
  const double base = gain_const_mw_ * std::pow(d2, neg_half_exponent_);
  return extra_loss_db == 0.0 ? base : base * dbToLinear(-extra_loss_db);
}

double RadioModel::receivedPowerDbm(Vec2 position, CellId cell) const {
  return mwToDbm(linkPowerMw(position, cell, 0.0));
}

double RadioModel::sinrDb(Vec2 position, CellId serving_cell) const {
  return sinrDbWith(position, serving_cell, [this](CellId cell) {
    return network_.station(cell).utilization();
  });
}

double RadioModel::shadowedSinrDb(Vec2 position, CellId serving_cell,
                                  std::mt19937_64& rng) const {
  std::normal_distribution<double> shadow{
      0.0, config_.path_loss.shadowing_sigma_db};
  const bool shadowing = config_.path_loss.shadowing_sigma_db > 0.0;
  const double serving_extra = shadowing ? shadow(rng) : 0.0;
  const double signal_mw = linkPowerMw(position, serving_cell, serving_extra);
  double interference_mw = noise_mw_;
  const std::uint32_t begin = interferer_offsets_[serving_cell];
  const std::uint32_t end = interferer_offsets_[serving_cell + 1];
  for (std::uint32_t k = begin; k != end; ++k) {
    const CellId cell = interferer_ids_[k];
    const double activity =
        config_.activity_factor * network_.station(cell).utilization();
    if (activity <= 0.0) continue;
    // One shadowing draw per ACTIVE footprint link, in ascending id order —
    // the draw sequence is part of the model's deterministic contract.
    const double extra = shadowing ? shadow(rng) : 0.0;
    const double dx = position.x - station_x_[k];
    const double dy = position.y - station_y_[k];
    const double d2 = std::max(dx * dx + dy * dy, min_distance_sq_);
    double link_mw = gain_const_mw_ * std::pow(d2, neg_half_exponent_);
    if (extra != 0.0) link_mw *= dbToLinear(-extra);
    interference_mw += activity * link_mw;
  }
  return linearToDbFast(signal_mw / interference_mw);
}

}  // namespace facs::cellular
