#include "cellular/radio.hpp"

#include <cmath>
#include <stdexcept>

namespace facs::cellular {

double dbToLinear(double db) noexcept { return std::pow(10.0, db / 10.0); }
double linearToDb(double linear) noexcept { return 10.0 * std::log10(linear); }
double dbmToMw(double dbm) noexcept { return dbToLinear(dbm); }
double mwToDbm(double mw) noexcept { return linearToDb(mw); }

double pathLossDb(const PathLossParams& params, double d_km) {
  if (d_km < 0.0) {
    throw std::invalid_argument("path-loss distance must be >= 0");
  }
  const double d = std::max(d_km, params.min_distance_km);
  return params.reference_loss_db +
         10.0 * params.exponent *
             std::log10(d / params.reference_distance_km);
}

double shadowedPathLossDb(const PathLossParams& params, double d_km,
                          std::mt19937_64& rng) {
  double loss = pathLossDb(params, d_km);
  if (params.shadowing_sigma_db > 0.0) {
    std::normal_distribution<double> shadow{0.0, params.shadowing_sigma_db};
    loss += shadow(rng);
  }
  return loss;
}

RadioModel::RadioModel(const HexNetwork& network, Config config)
    : network_{network}, config_{config} {
  if (config_.activity_factor < 0.0 || config_.activity_factor > 1.0) {
    throw std::invalid_argument("activity factor must be in [0, 1]");
  }
  if (!(config_.path_loss.exponent > 0.0)) {
    throw std::invalid_argument("path-loss exponent must be positive");
  }
  if (!(config_.path_loss.min_distance_km > 0.0)) {
    throw std::invalid_argument("minimum path-loss distance must be positive");
  }
}

double RadioModel::linkPowerMw(Vec2 position, CellId cell,
                               double extra_loss_db) const {
  const double d = network_.distanceToStationKm(position, cell);
  const double loss = pathLossDb(config_.path_loss, d) + extra_loss_db;
  return dbmToMw(config_.tx_power_dbm - loss);
}

double RadioModel::receivedPowerDbm(Vec2 position, CellId cell) const {
  return mwToDbm(linkPowerMw(position, cell, 0.0));
}

double RadioModel::sinrDb(Vec2 position, CellId serving_cell) const {
  const double signal_mw = linkPowerMw(position, serving_cell, 0.0);
  double interference_mw = dbmToMw(config_.noise_floor_dbm);
  for (const Cell& c : network_.cells()) {
    if (c.id == serving_cell) continue;
    const double activity =
        config_.activity_factor * network_.station(c.id).utilization();
    if (activity <= 0.0) continue;
    interference_mw += activity * linkPowerMw(position, c.id, 0.0);
  }
  return linearToDb(signal_mw / interference_mw);
}

double RadioModel::shadowedSinrDb(Vec2 position, CellId serving_cell,
                                  std::mt19937_64& rng) const {
  std::normal_distribution<double> shadow{
      0.0, config_.path_loss.shadowing_sigma_db};
  const double serving_extra =
      config_.path_loss.shadowing_sigma_db > 0.0 ? shadow(rng) : 0.0;
  const double signal_mw = linkPowerMw(position, serving_cell, serving_extra);
  double interference_mw = dbmToMw(config_.noise_floor_dbm);
  for (const Cell& c : network_.cells()) {
    if (c.id == serving_cell) continue;
    const double activity =
        config_.activity_factor * network_.station(c.id).utilization();
    if (activity <= 0.0) continue;
    const double extra =
        config_.path_loss.shadowing_sigma_db > 0.0 ? shadow(rng) : 0.0;
    interference_mw += activity * linkPowerMw(position, c.id, extra);
  }
  return linearToDb(signal_mw / interference_mw);
}

}  // namespace facs::cellular
