#pragma once
/// \file admission.hpp
/// The Call Admission Control policy interface. FACS (src/core), the
/// Shadow Cluster Concept baseline (src/scc) and the classic policies
/// (src/cac) all implement this; the simulator (src/sim) consumes it.

#include <cstdint>
#include <string>
#include <string_view>

#include "cellular/basestation.hpp"
#include "cellular/call.hpp"

namespace facs::cellular {

/// Everything a policy may consult at decision time beyond the request.
struct AdmissionContext {
  const BaseStation& station;  ///< Ledger of the target cell.
  double now_s = 0.0;          ///< Simulation clock.
  /// Opt-in diagnostics: when set, policies fill
  /// AdmissionDecision::rationale with a human-readable explanation. Off by
  /// default because rationale strings allocate — the simulator makes
  /// millions of decisions and reads only `accept`/`reason`; dashboards and
  /// examples flip this on for the requests they display.
  bool explain = false;
};

/// Machine-readable outcome of a decision: *why* a request was admitted or
/// denied, without parsing rationale text. Always set, explain or not.
enum class ReasonCode : std::uint8_t {
  Admitted = 0,        ///< Accepted; capacity and policy criteria met.
  NoCapacity,          ///< The hard ledger cannot fit the demand.
  GuardReserved,       ///< Blocked by a guard band held for handoffs.
  OverClassThreshold,  ///< Occupancy above the request's class cutoff.
  FuzzyReject,         ///< FACS: crisp A/R at or below the threshold tau.
  ProjectedOverload,   ///< SCC: projected demand exceeds survivability.
  LeavesCoverage,      ///< SCC: predicted to exit coverage within horizon.
  SinrTooLow,          ///< SIR below the per-class admission threshold.
  ReservedForHandoff,  ///< Blocked by outstanding handoff reservations.
};

[[nodiscard]] constexpr std::string_view toString(ReasonCode r) noexcept {
  switch (r) {
    case ReasonCode::Admitted:
      return "admitted";
    case ReasonCode::NoCapacity:
      return "no-capacity";
    case ReasonCode::GuardReserved:
      return "guard-reserved";
    case ReasonCode::OverClassThreshold:
      return "over-class-threshold";
    case ReasonCode::FuzzyReject:
      return "fuzzy-reject";
    case ReasonCode::ProjectedOverload:
      return "projected-overload";
    case ReasonCode::LeavesCoverage:
      return "leaves-coverage";
    case ReasonCode::SinrTooLow:
      return "sinr-too-low";
    case ReasonCode::ReservedForHandoff:
      return "reserved-for-handoff";
  }
  return "admitted";
}

/// Outcome of one admission decision.
struct AdmissionDecision {
  bool accept = false;
  /// Machine-readable outcome; `Admitted` iff accept. The default matches
  /// the default accept = false (fail safe: a half-initialized decision
  /// reads as a denial, never as a spurious admission).
  ReasonCode reason = ReasonCode::NoCapacity;
  /// Policy-specific confidence in [-1, 1]; for FACS this is the
  /// defuzzified A/R value, for others a coarse mapping. Negative = reject
  /// leaning, positive = accept leaning.
  double score = 0.0;
  /// Human-readable rationale for logs/dashboards. Only populated when the
  /// decision was made with AdmissionContext::explain set; empty (and
  /// allocation-free) on the hot path.
  std::string rationale;
};

/// Abstract CAC policy (stateful: policies may track per-cell bookkeeping).
///
/// Protocol, driven by the simulator:
///   decide()      — called for every request (new call or handoff) BEFORE
///                   any bandwidth is allocated;
///   onAdmitted()  — called after the simulator allocates bandwidth;
///   onReleased()  — called after a call ends or leaves the cell;
///   onRejected()  — called when a request is denied (blocked/dropped).
class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual AdmissionDecision decide(
      const CallRequest& request, const AdmissionContext& context) = 0;

  virtual void onAdmitted(const CallRequest& /*request*/,
                          const AdmissionContext& /*context*/) {}
  virtual void onReleased(const CallRequest& /*request*/,
                          const AdmissionContext& /*context*/) {}
  virtual void onRejected(const CallRequest& /*request*/,
                          const AdmissionContext& /*context*/) {}

 protected:
  AdmissionController() = default;
  AdmissionController(const AdmissionController&) = default;
  AdmissionController& operator=(const AdmissionController&) = default;
};

}  // namespace facs::cellular
