#pragma once
/// \file admission.hpp
/// The Call Admission Control policy interface. FACS (src/core), the
/// Shadow Cluster Concept baseline (src/scc) and the classic policies
/// (src/cac) all implement this; the simulator (src/sim) consumes it.

#include <algorithm>
#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

#include "cellular/basestation.hpp"
#include "cellular/call.hpp"

namespace facs::cellular {

class CellGroupPartition;  // network.hpp — the engine's cell-to-lane mapping

/// Result of a policy's optional request-time precomputation — the part of
/// a decision that depends only on the user snapshot, so it can be produced
/// before the serialized decision instant (for FACS: the FLC1 correction
/// value). Carried into decide() through AdmissionContext::predicted; an
/// invalid value means "nothing precomputed", and policies fall back to
/// inline inference, so results are identical either way.
struct PredictedCv {
  double cv = 0.0;     ///< Policy-defined prediction (FACS: Cv in [0, 1]).
  bool valid = false;  ///< False = precompute() was skipped or unsupported.
};

/// Everything a policy may consult at decision time beyond the request.
struct AdmissionContext {
  const BaseStation& station;  ///< Ledger of the target cell.
  double now_s = 0.0;          ///< Simulation clock.
  /// Opt-in diagnostics: when set, policies fill
  /// AdmissionDecision::rationale with a human-readable explanation. Off by
  /// default because rationale strings allocate — the simulator makes
  /// millions of decisions and reads only `accept`/`reason`; dashboards and
  /// examples flip this on for the requests they display.
  bool explain = false;
  /// Snapshot-only work hoisted off the serialized decision path (filled by
  /// the caller from a prior precompute() on the SAME snapshot the request
  /// carries). Policies must treat an invalid value as "infer inline".
  PredictedCv predicted{};
};

/// Machine-readable outcome of a decision: *why* a request was admitted or
/// denied, without parsing rationale text. Always set, explain or not.
enum class ReasonCode : std::uint8_t {
  Admitted = 0,        ///< Accepted; capacity and policy criteria met.
  NoCapacity,          ///< The hard ledger cannot fit the demand.
  GuardReserved,       ///< Blocked by a guard band held for handoffs.
  OverClassThreshold,  ///< Occupancy above the request's class cutoff.
  FuzzyReject,         ///< FACS: crisp A/R at or below the threshold tau.
  ProjectedOverload,   ///< SCC: projected demand exceeds survivability.
  LeavesCoverage,      ///< SCC: predicted to exit coverage within horizon.
  SinrTooLow,          ///< SIR below the per-class admission threshold.
  ReservedForHandoff,  ///< Blocked by outstanding handoff reservations.
};

[[nodiscard]] constexpr std::string_view toString(ReasonCode r) noexcept {
  switch (r) {
    case ReasonCode::Admitted:
      return "admitted";
    case ReasonCode::NoCapacity:
      return "no-capacity";
    case ReasonCode::GuardReserved:
      return "guard-reserved";
    case ReasonCode::OverClassThreshold:
      return "over-class-threshold";
    case ReasonCode::FuzzyReject:
      return "fuzzy-reject";
    case ReasonCode::ProjectedOverload:
      return "projected-overload";
    case ReasonCode::LeavesCoverage:
      return "leaves-coverage";
    case ReasonCode::SinrTooLow:
      return "sinr-too-low";
    case ReasonCode::ReservedForHandoff:
      return "reserved-for-handoff";
  }
  // Out-of-range values (a corrupted or half-initialized decision) must not
  // masquerade as a legitimate outcome in logs.
  return "invalid";
}

/// Fixed-capacity inline text for decision rationales. Trivially copyable
/// (no heap, no move machinery), so returning an AdmissionDecision by value
/// costs a plain memcpy whether or not a rationale was written — the
/// explain-off hot path no longer pays even an empty std::string's move.
/// Overlong text is truncated at kCapacity and flagged (truncated());
/// rationales are one-line diagnostics, never data. appendf() formats
/// straight into the inline buffer, so explain-mode policies no longer
/// build a std::ostringstream per decision.
class ReasonText {
 public:
  static constexpr std::size_t kCapacity = 119;
  static constexpr std::size_t npos = std::string_view::npos;

  constexpr ReasonText() noexcept = default;
  // Implicit converting constructors (plus the defaulted copy assignment)
  // let call sites keep writing `decision.rationale = os.str()` or a
  // string literal, exactly as when rationale was a std::string.
  ReasonText(std::string_view text) noexcept { assign(text); }  // NOLINT
  ReasonText(const char* text) noexcept                         // NOLINT
      : ReasonText{std::string_view{text}} {}
  ReasonText(const std::string& text) noexcept                  // NOLINT
      : ReasonText{std::string_view{text}} {}

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// True when any assign()/appendf() since the last clear() did not fit
  /// and the text was cut at kCapacity — detectable, never silent.
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  /// NUL-terminated (the buffer always holds a terminator).
  [[nodiscard]] const char* c_str() const noexcept { return text_; }
  [[nodiscard]] std::string_view view() const noexcept {
    return {text_, size_};
  }
  operator std::string_view() const noexcept { return view(); }  // NOLINT

  void clear() noexcept {
    size_ = 0;
    truncated_ = false;
    text_[0] = '\0';
  }

  /// snprintf-style formatted append into the remaining inline capacity.
  /// Returns false (and sets truncated()) when the formatted text did not
  /// fit; whatever fit is kept, so a cut rationale still reads sensibly.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 2, 3)))
#endif
  bool
  appendf(const char* fmt, ...) noexcept {
    std::va_list args;
    va_start(args, fmt);
    const std::size_t room = kCapacity - size_;  // excludes the terminator
    const int wanted = std::vsnprintf(text_ + size_, room + 1, fmt, args);
    va_end(args);
    if (wanted < 0) {  // encoding error: keep the prior content intact
      text_[size_] = '\0';
      return false;
    }
    if (static_cast<std::size_t>(wanted) > room) {
      size_ = static_cast<std::uint8_t>(kCapacity);
      truncated_ = true;
      return false;
    }
    size_ = static_cast<std::uint8_t>(size_ + wanted);
    return true;
  }

  /// std::string-compatible search, so call sites can keep comparing
  /// against std::string::npos.
  [[nodiscard]] std::size_t find(std::string_view needle) const noexcept {
    return view().find(needle);
  }

  friend bool operator==(const ReasonText& a, const ReasonText& b) noexcept {
    return a.view() == b.view();
  }

 private:
  void assign(std::string_view text) noexcept {
    truncated_ = text.size() > kCapacity;
    size_ = static_cast<std::uint8_t>(std::min(text.size(), kCapacity));
    std::copy_n(text.data(), size_, text_);
    text_[size_] = '\0';
  }

  char text_[kCapacity + 1] = {};
  std::uint8_t size_ = 0;
  bool truncated_ = false;
};
static_assert(ReasonText::kCapacity <= 255, "size_ is a uint8_t");

inline std::ostream& operator<<(std::ostream& os, const ReasonText& text) {
  return os << text.view();
}

/// Outcome of one admission decision.
struct AdmissionDecision {
  bool accept = false;
  /// Machine-readable outcome; `Admitted` iff accept. The default matches
  /// the default accept = false (fail safe: a half-initialized decision
  /// reads as a denial, never as a spurious admission).
  ReasonCode reason = ReasonCode::NoCapacity;
  /// Policy-specific confidence in [-1, 1]; for FACS this is the
  /// defuzzified A/R value, for others a coarse mapping. Negative = reject
  /// leaning, positive = accept leaning.
  double score = 0.0;
  /// Human-readable rationale for logs/dashboards. Only populated when the
  /// decision was made with AdmissionContext::explain set; empty on the
  /// hot path, and allocation-free either way.
  ReasonText rationale;
};
static_assert(std::is_trivially_copyable_v<AdmissionDecision>,
              "decide() returns by value on the hot path; keep it memcpy-able");

/// How much shared state, beyond the immutable configuration, one
/// decide()/onAdmitted()/onReleased()/onRejected() call may read or write.
/// The sharded simulator consults this to decide whether decisions for
/// disjoint cell groups may commit concurrently (two-level commit lanes).
enum class CommitScope : std::uint8_t {
  /// The call touches only the target cell's ledger (context.station) and
  /// controller state that is immutable or per-thread. Decisions for
  /// different cells are then independent, and the engine may commit them
  /// from concurrent per-group lanes. Declaring CellLocal is a PROMISE:
  /// concurrent calls for different cells must be data-race free and must
  /// produce the same bits regardless of which thread runs them.
  CellLocal,
  /// Partition-aware middle ground: the call may touch per-cell state of
  /// ANY cell in the target cell's commit group (per-group shadow stores,
  /// neighbourhood accumulators), provided the controller learned the
  /// engine's partition through onPartitionChanged(). Writes that would
  /// cross a group boundary must be deferred internally and drained when
  /// the engine calls onCommitBarrier() — single-threaded, at the
  /// tick-window barrier, alongside the reservation drain. Declaring
  /// GroupLocal is the same promise as CellLocal, widened from one cell to
  /// one group: concurrent calls for different GROUPS must be data-race
  /// free and deterministic. The engine runs GroupLocal policies at the
  /// full configured lane count.
  GroupLocal,
  /// The call may consult or mutate state spanning arbitrary cells with no
  /// partition discipline (SIR interference from every station's
  /// utilization, unbounded SCC shadows at reach=0). The engine serializes
  /// every commit — commit_groups degrades to one lane. The safe default.
  Global,
};

/// What a GroupLocal policy drained at one tick-window barrier — folded
/// into Metrics (demand_deltas, shadow_migrations) so cross-group policy
/// traffic is as observable as the engine's own reservations.
struct BarrierDrainStats {
  std::uint64_t deltas_applied = 0;    ///< Cross-group state deltas applied.
  std::uint64_t shadows_migrated = 0;  ///< Per-group records re-homed.
};

/// The workload envelope the engine hands to auditWorkload(): the knobs a
/// policy's sizing footguns depend on but cannot see from its own config.
struct WorkloadEnvelope {
  double v_max_kmh = 0.0;      ///< Fastest mobile the scenario can draw.
  double cell_radius_km = 0.0; ///< Hex circumradius of the network's cells.
};

/// Abstract CAC policy (stateful: policies may track per-cell bookkeeping).
///
/// Protocol, driven by the simulator:
///   decide()      — called for every request (new call or handoff) BEFORE
///                   any bandwidth is allocated;
///   onAdmitted()  — called after the simulator allocates bandwidth;
///   onReleased()  — called after a call ends or leaves the cell;
///   onRejected()  — called when a request is denied (blocked/dropped).
class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Which shared state the decision protocol reaches — see CommitScope.
  /// Policies whose decisions are a pure function of the request and the
  /// target cell's ledger should override this to CellLocal so the sharded
  /// engine can commit cell groups in parallel.
  [[nodiscard]] virtual CommitScope commitScope() const noexcept {
    return CommitScope::Global;
  }

  [[nodiscard]] virtual AdmissionDecision decide(
      const CallRequest& request, const AdmissionContext& context) = 0;

  /// Optional request-time precomputation: the part of a decision that
  /// depends only on the user snapshot (for FACS, the FLC1 prediction), so
  /// it can run before the serialized decision instant. The simulator calls
  /// this from its PARALLEL prepare phase — possibly from many threads at
  /// once — so overrides must be thread-safe and must not touch mutable
  /// controller state. The result is handed back verbatim through
  /// AdmissionContext::predicted when the same request reaches decide();
  /// the default (invalid) result makes decide() infer inline, with
  /// bit-identical outcomes either way.
  [[nodiscard]] virtual PredictedCv precompute(
      const UserSnapshot& /*user*/) const {
    return {};
  }

  virtual void onAdmitted(const CallRequest& /*request*/,
                          const AdmissionContext& /*context*/) {}
  virtual void onReleased(const CallRequest& /*request*/,
                          const AdmissionContext& /*context*/) {}
  virtual void onRejected(const CallRequest& /*request*/,
                          const AdmissionContext& /*context*/) {}

  /// The engine's cell-to-group mapping changed: once at startup (before
  /// any decision) and again at every adopted repartition epoch — always
  /// from barrier context (single-threaded, no lane running, no claim in
  /// flight, no deferred policy work pending). GroupLocal policies re-key
  /// their per-group state here, deterministically (canonical record
  /// order); everyone else ignores it. The partition reference is only
  /// valid for the duration of the call — copy what you keep.
  virtual void onPartitionChanged(const CellGroupPartition& /*partition*/) {}

  /// Tick-window barrier hook, called single-threaded after every lane has
  /// quiesced and the engine's own reservation mailboxes have drained.
  /// GroupLocal policies apply their deferred cross-group writes here (in
  /// canonical order — the drain must be a pure function of the committed
  /// event sequence) and report what moved; the default is a no-op. Only
  /// called when the run actually has more than one commit group.
  virtual BarrierDrainStats onCommitBarrier(double /*now_s*/) { return {}; }

  /// Startup sizing audit: given the workload envelope, return a one-line
  /// warning when the policy's configuration silently degrades under it
  /// (e.g. an SCC reach too small for the fastest mobile's projection
  /// horizon), or an empty string when the sizing is sound. The engine
  /// prints a non-empty result once on stderr and counts it in
  /// Metrics::policy_warnings; decisions never depend on it.
  [[nodiscard]] virtual std::string auditWorkload(
      const WorkloadEnvelope& /*envelope*/) const {
    return {};
  }

 protected:
  AdmissionController() = default;
  AdmissionController(const AdmissionController&) = default;
  AdmissionController& operator=(const AdmissionController&) = default;
};

}  // namespace facs::cellular
