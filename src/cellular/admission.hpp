#pragma once
/// \file admission.hpp
/// The Call Admission Control policy interface. FACS (src/core), the
/// Shadow Cluster Concept baseline (src/scc) and the classic policies
/// (src/cac) all implement this; the simulator (src/sim) consumes it.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

#include "cellular/basestation.hpp"
#include "cellular/call.hpp"

namespace facs::cellular {

/// Everything a policy may consult at decision time beyond the request.
struct AdmissionContext {
  const BaseStation& station;  ///< Ledger of the target cell.
  double now_s = 0.0;          ///< Simulation clock.
  /// Opt-in diagnostics: when set, policies fill
  /// AdmissionDecision::rationale with a human-readable explanation. Off by
  /// default because rationale strings allocate — the simulator makes
  /// millions of decisions and reads only `accept`/`reason`; dashboards and
  /// examples flip this on for the requests they display.
  bool explain = false;
};

/// Machine-readable outcome of a decision: *why* a request was admitted or
/// denied, without parsing rationale text. Always set, explain or not.
enum class ReasonCode : std::uint8_t {
  Admitted = 0,        ///< Accepted; capacity and policy criteria met.
  NoCapacity,          ///< The hard ledger cannot fit the demand.
  GuardReserved,       ///< Blocked by a guard band held for handoffs.
  OverClassThreshold,  ///< Occupancy above the request's class cutoff.
  FuzzyReject,         ///< FACS: crisp A/R at or below the threshold tau.
  ProjectedOverload,   ///< SCC: projected demand exceeds survivability.
  LeavesCoverage,      ///< SCC: predicted to exit coverage within horizon.
  SinrTooLow,          ///< SIR below the per-class admission threshold.
  ReservedForHandoff,  ///< Blocked by outstanding handoff reservations.
};

[[nodiscard]] constexpr std::string_view toString(ReasonCode r) noexcept {
  switch (r) {
    case ReasonCode::Admitted:
      return "admitted";
    case ReasonCode::NoCapacity:
      return "no-capacity";
    case ReasonCode::GuardReserved:
      return "guard-reserved";
    case ReasonCode::OverClassThreshold:
      return "over-class-threshold";
    case ReasonCode::FuzzyReject:
      return "fuzzy-reject";
    case ReasonCode::ProjectedOverload:
      return "projected-overload";
    case ReasonCode::LeavesCoverage:
      return "leaves-coverage";
    case ReasonCode::SinrTooLow:
      return "sinr-too-low";
    case ReasonCode::ReservedForHandoff:
      return "reserved-for-handoff";
  }
  return "admitted";
}

/// Fixed-capacity inline text for decision rationales. Trivially copyable
/// (no heap, no move machinery), so returning an AdmissionDecision by value
/// costs a plain memcpy whether or not a rationale was written — the
/// explain-off hot path no longer pays even an empty std::string's move.
/// Overlong text is truncated at kCapacity; rationales are one-line
/// diagnostics, never data.
class ReasonText {
 public:
  static constexpr std::size_t kCapacity = 119;
  static constexpr std::size_t npos = std::string_view::npos;

  constexpr ReasonText() noexcept = default;
  // Implicit converting constructors (plus the defaulted copy assignment)
  // let call sites keep writing `decision.rationale = os.str()` or a
  // string literal, exactly as when rationale was a std::string.
  ReasonText(std::string_view text) noexcept { assign(text); }  // NOLINT
  ReasonText(const char* text) noexcept                         // NOLINT
      : ReasonText{std::string_view{text}} {}
  ReasonText(const std::string& text) noexcept                  // NOLINT
      : ReasonText{std::string_view{text}} {}

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// NUL-terminated (the buffer always holds a terminator).
  [[nodiscard]] const char* c_str() const noexcept { return text_; }
  [[nodiscard]] std::string_view view() const noexcept {
    return {text_, size_};
  }
  operator std::string_view() const noexcept { return view(); }  // NOLINT

  /// std::string-compatible search, so call sites can keep comparing
  /// against std::string::npos.
  [[nodiscard]] std::size_t find(std::string_view needle) const noexcept {
    return view().find(needle);
  }

  friend bool operator==(const ReasonText& a, const ReasonText& b) noexcept {
    return a.view() == b.view();
  }

 private:
  void assign(std::string_view text) noexcept {
    size_ = std::min(text.size(), kCapacity);
    std::copy_n(text.data(), size_, text_);
    text_[size_] = '\0';
  }

  char text_[kCapacity + 1] = {};
  std::uint8_t size_ = 0;
};
static_assert(ReasonText::kCapacity <= 255, "size_ is a uint8_t");

inline std::ostream& operator<<(std::ostream& os, const ReasonText& text) {
  return os << text.view();
}

/// Outcome of one admission decision.
struct AdmissionDecision {
  bool accept = false;
  /// Machine-readable outcome; `Admitted` iff accept. The default matches
  /// the default accept = false (fail safe: a half-initialized decision
  /// reads as a denial, never as a spurious admission).
  ReasonCode reason = ReasonCode::NoCapacity;
  /// Policy-specific confidence in [-1, 1]; for FACS this is the
  /// defuzzified A/R value, for others a coarse mapping. Negative = reject
  /// leaning, positive = accept leaning.
  double score = 0.0;
  /// Human-readable rationale for logs/dashboards. Only populated when the
  /// decision was made with AdmissionContext::explain set; empty on the
  /// hot path, and allocation-free either way.
  ReasonText rationale;
};
static_assert(std::is_trivially_copyable_v<AdmissionDecision>,
              "decide() returns by value on the hot path; keep it memcpy-able");

/// Abstract CAC policy (stateful: policies may track per-cell bookkeeping).
///
/// Protocol, driven by the simulator:
///   decide()      — called for every request (new call or handoff) BEFORE
///                   any bandwidth is allocated;
///   onAdmitted()  — called after the simulator allocates bandwidth;
///   onReleased()  — called after a call ends or leaves the cell;
///   onRejected()  — called when a request is denied (blocked/dropped).
class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual AdmissionDecision decide(
      const CallRequest& request, const AdmissionContext& context) = 0;

  virtual void onAdmitted(const CallRequest& /*request*/,
                          const AdmissionContext& /*context*/) {}
  virtual void onReleased(const CallRequest& /*request*/,
                          const AdmissionContext& /*context*/) {}
  virtual void onRejected(const CallRequest& /*request*/,
                          const AdmissionContext& /*context*/) {}

 protected:
  AdmissionController() = default;
  AdmissionController(const AdmissionController&) = default;
  AdmissionController& operator=(const AdmissionController&) = default;
};

}  // namespace facs::cellular
