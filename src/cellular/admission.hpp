#pragma once
/// \file admission.hpp
/// The Call Admission Control policy interface. FACS (src/core), the
/// Shadow Cluster Concept baseline (src/scc) and the classic policies
/// (src/cac) all implement this; the simulator (src/sim) consumes it.

#include <string>

#include "cellular/basestation.hpp"
#include "cellular/call.hpp"

namespace facs::cellular {

/// Everything a policy may consult at decision time beyond the request.
struct AdmissionContext {
  const BaseStation& station;  ///< Ledger of the target cell.
  double now_s = 0.0;          ///< Simulation clock.
};

/// Outcome of one admission decision.
struct AdmissionDecision {
  bool accept = false;
  /// Policy-specific confidence in [-1, 1]; for FACS this is the
  /// defuzzified A/R value, for others a coarse mapping. Negative = reject
  /// leaning, positive = accept leaning.
  double score = 0.0;
  /// Short human-readable rationale for logs/dashboards.
  std::string rationale;
};

/// Abstract CAC policy (stateful: policies may track per-cell bookkeeping).
///
/// Protocol, driven by the simulator:
///   decide()      — called for every request (new call or handoff) BEFORE
///                   any bandwidth is allocated;
///   onAdmitted()  — called after the simulator allocates bandwidth;
///   onReleased()  — called after a call ends or leaves the cell;
///   onRejected()  — called when a request is denied (blocked/dropped).
class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual AdmissionDecision decide(
      const CallRequest& request, const AdmissionContext& context) = 0;

  virtual void onAdmitted(const CallRequest& /*request*/,
                          const AdmissionContext& /*context*/) {}
  virtual void onReleased(const CallRequest& /*request*/,
                          const AdmissionContext& /*context*/) {}
  virtual void onRejected(const CallRequest& /*request*/,
                          const AdmissionContext& /*context*/) {}

 protected:
  AdmissionController() = default;
  AdmissionController(const AdmissionController&) = default;
  AdmissionController& operator=(const AdmissionController&) = default;
};

}  // namespace facs::cellular
