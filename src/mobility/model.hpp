#pragma once
/// \file model.hpp
/// User mobility models.
///
/// The paper's evaluation rests on one behavioural premise (Section 4):
/// slow (walking) users change direction easily, so their trajectory is
/// hard to predict; fast (vehicular) users cannot turn sharply, so
/// prediction is reliable. SpeedDependentTurn encodes exactly that premise;
/// RandomWaypoint and GaussMarkov are provided as standard alternatives for
/// sensitivity experiments.

#include <memory>
#include <random>

#include "cellular/geometry.hpp"

namespace facs::mobility {

/// Ground-truth kinematic state of a user.
struct MotionState {
  cellular::Vec2 position_km{};
  double speed_kmh = 0.0;
  double heading_deg = 0.0;  ///< Math angle, (-180, 180].
};

/// Advances a MotionState through time. One instance per user (models may
/// keep per-user state such as the current waypoint).
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Advances \p state by \p dt_s seconds.
  /// \throws std::invalid_argument if dt_s is not positive.
  virtual void step(MotionState& state, double dt_s,
                    std::mt19937_64& rng) = 0;

 protected:
  MobilityModel() = default;
};

/// Straight-line motion at constant speed and heading.
class ConstantVelocity final : public MobilityModel {
 public:
  void step(MotionState& state, double dt_s, std::mt19937_64& rng) override;
};

/// Parameters of the speed-dependent direction-change model.
struct SpeedDependentTurnParams {
  /// Heading diffusion of a stationary user, in degrees per sqrt(second).
  /// A pedestrian (4 km/h) keeps most of this; a car (60+ km/h) almost none.
  double sigma_max_deg = 40.0;
  /// Speed scale of the decay: sigma(v) = sigma_max * exp(-v / v_ref_kmh).
  double v_ref_kmh = 18.0;
};

/// The paper's mobility premise: heading performs a random walk whose
/// standard deviation decays exponentially with speed. Speed is constant.
class SpeedDependentTurn final : public MobilityModel {
 public:
  explicit SpeedDependentTurn(SpeedDependentTurnParams params = {});

  void step(MotionState& state, double dt_s, std::mt19937_64& rng) override;

  /// Heading standard deviation (deg per sqrt-second) at a given speed.
  [[nodiscard]] double sigmaDeg(double speed_kmh) const noexcept;

  [[nodiscard]] const SpeedDependentTurnParams& params() const noexcept {
    return params_;
  }

 private:
  SpeedDependentTurnParams params_;
};

/// Gauss-Markov mobility: speed and heading are mean-reverting AR(1)
/// processes with tunable memory alpha in [0, 1] (1 = straight line,
/// 0 = memoryless).
struct GaussMarkovParams {
  double alpha = 0.85;
  double mean_speed_kmh = 30.0;
  double speed_sigma_kmh = 5.0;
  double heading_sigma_deg = 25.0;
  /// Steps are normalized to this period so alpha is dt-independent.
  double reference_dt_s = 1.0;
};

class GaussMarkov final : public MobilityModel {
 public:
  /// \throws std::invalid_argument for alpha outside [0, 1] or non-positive
  ///         sigmas / reference period.
  explicit GaussMarkov(GaussMarkovParams params = {});

  void step(MotionState& state, double dt_s, std::mt19937_64& rng) override;

  [[nodiscard]] const GaussMarkovParams& params() const noexcept {
    return params_;
  }

 private:
  GaussMarkovParams params_;
  /// Mean heading the process reverts to; captured from the first step so
  /// users keep their initial general direction.
  double mean_heading_deg_ = 0.0;
  bool mean_heading_set_ = false;
};

/// Random waypoint inside a disc of radius \p area_radius_km centred at the
/// origin: move to a uniformly chosen waypoint, optionally pause, repeat.
class RandomWaypoint final : public MobilityModel {
 public:
  /// \throws std::invalid_argument on non-positive radius or negative pause.
  explicit RandomWaypoint(double area_radius_km, double pause_s = 0.0);

  void step(MotionState& state, double dt_s, std::mt19937_64& rng) override;

 private:
  void pickWaypoint(const MotionState& state, std::mt19937_64& rng);

  double area_radius_km_;
  double pause_s_;
  cellular::Vec2 waypoint_{};
  bool has_waypoint_ = false;
  double pause_remaining_s_ = 0.0;
};

}  // namespace facs::mobility
