#pragma once
/// \file gps.hpp
/// GPS measurement substrate.
///
/// The paper states: "The user movement is obtained by GPS and the fuzzy
/// decision is based on the user speed, angle and distance from the Base
/// Station." We have no physical receivers, so this module substitutes a
/// synthetic GPS: positions are sampled from the ground-truth trajectory
/// with Gaussian horizontal error, and a small estimator reconstructs the
/// (S, A, D) measurement vector the controllers consume. This preserves
/// the property the paper leans on — controller inputs are noisy and the
/// admission logic must tolerate that (hence fuzzy logic).

#include <optional>
#include <random>
#include <vector>

#include "cellular/call.hpp"
#include "mobility/model.hpp"

namespace facs::mobility {

/// One timestamped (noisy) position fix.
struct GpsFix {
  double t_s = 0.0;
  cellular::Vec2 position_km{};
};

/// Draws fixes from a true position with configurable horizontal error.
class GpsSampler {
 public:
  /// \param horizontal_error_m 1-sigma per-axis position error in metres
  ///        (typical consumer GPS of the paper's era: 5-15 m).
  /// \throws std::invalid_argument if the error is negative.
  explicit GpsSampler(double horizontal_error_m = 10.0);

  [[nodiscard]] GpsFix sample(double t_s, cellular::Vec2 true_position_km,
                              std::mt19937_64& rng) const;

  [[nodiscard]] double horizontalErrorM() const noexcept {
    return horizontal_error_m_;
  }

 private:
  double horizontal_error_m_;
};

/// Reconstructs the controller's measurement vector from recent fixes.
///
/// Speed and heading come from a finite difference over the estimator
/// window (older fix to newest fix), which low-passes GPS jitter the same
/// way a receiver's velocity filter would.
class GpsEstimator {
 public:
  /// \param window how many fixes to retain (>= 2).
  /// \throws std::invalid_argument if window < 2.
  explicit GpsEstimator(std::size_t window = 4);

  /// Adds a fix. Fix timestamps must be strictly increasing.
  /// \throws std::invalid_argument on a non-monotonic timestamp.
  void addFix(const GpsFix& fix);

  /// Forgets every fix but keeps the window and the fix storage, so one
  /// estimator instance can track many calls in sequence without
  /// reallocating — the streaming engine's per-shard scratch estimators
  /// rely on this for allocation-free steady state.
  void reset() noexcept { fixes_.clear(); }

  [[nodiscard]] std::size_t fixCount() const noexcept { return fixes_.size(); }
  [[nodiscard]] bool ready() const noexcept { return fixes_.size() >= 2; }

  /// Estimated kinematics, or nullopt until two fixes are available.
  [[nodiscard]] std::optional<MotionState> motion() const;

  /// Builds the FLC1 measurement vector relative to a base station.
  /// \throws std::logic_error if not ready().
  [[nodiscard]] cellular::UserSnapshot snapshot(
      cellular::Vec2 station_position_km) const;

 private:
  std::size_t window_;
  /// Sliding window kept in a vector (capacity is retained across
  /// reset()); the window is a handful of fixes, so the front erase is
  /// cheaper than deque's per-block allocation.
  std::vector<GpsFix> fixes_;
};

/// Convenience: builds a noiseless UserSnapshot straight from ground truth
/// (used by experiments that isolate controller behaviour from GPS error).
[[nodiscard]] cellular::UserSnapshot snapshotFromTruth(
    const MotionState& state, cellular::Vec2 station_position_km);

}  // namespace facs::mobility
