#include "mobility/model.hpp"

#include <cmath>
#include <stdexcept>

namespace facs::mobility {

using cellular::headingVector;
using cellular::normalizeAngleDeg;
using cellular::Vec2;

namespace {

constexpr double kKmhToKms = 1.0 / 3600.0;  // km/h -> km/s

void requirePositiveDt(double dt_s) {
  if (!(dt_s > 0.0)) {
    throw std::invalid_argument("mobility step requires dt_s > 0");
  }
}

void advance(MotionState& state, double dt_s) {
  state.position_km =
      state.position_km +
      headingVector(state.heading_deg) * (state.speed_kmh * kKmhToKms * dt_s);
}

}  // namespace

void ConstantVelocity::step(MotionState& state, double dt_s,
                            std::mt19937_64& /*rng*/) {
  requirePositiveDt(dt_s);
  advance(state, dt_s);
}

SpeedDependentTurn::SpeedDependentTurn(SpeedDependentTurnParams params)
    : params_{params} {
  if (!(params_.sigma_max_deg >= 0.0)) {
    throw std::invalid_argument("sigma_max_deg must be >= 0");
  }
  if (!(params_.v_ref_kmh > 0.0)) {
    throw std::invalid_argument("v_ref_kmh must be > 0");
  }
}

double SpeedDependentTurn::sigmaDeg(double speed_kmh) const noexcept {
  const double v = speed_kmh < 0.0 ? 0.0 : speed_kmh;
  return params_.sigma_max_deg * std::exp(-v / params_.v_ref_kmh);
}

void SpeedDependentTurn::step(MotionState& state, double dt_s,
                              std::mt19937_64& rng) {
  requirePositiveDt(dt_s);
  const double sigma = sigmaDeg(state.speed_kmh) * std::sqrt(dt_s);
  if (sigma > 0.0) {
    std::normal_distribution<double> turn{0.0, sigma};
    state.heading_deg = normalizeAngleDeg(state.heading_deg + turn(rng));
  }
  advance(state, dt_s);
}

GaussMarkov::GaussMarkov(GaussMarkovParams params) : params_{params} {
  if (params_.alpha < 0.0 || params_.alpha > 1.0) {
    throw std::invalid_argument("Gauss-Markov alpha must be in [0, 1]");
  }
  if (!(params_.speed_sigma_kmh >= 0.0) ||
      !(params_.heading_sigma_deg >= 0.0)) {
    throw std::invalid_argument("Gauss-Markov sigmas must be >= 0");
  }
  if (!(params_.reference_dt_s > 0.0)) {
    throw std::invalid_argument("Gauss-Markov reference period must be > 0");
  }
}

void GaussMarkov::step(MotionState& state, double dt_s, std::mt19937_64& rng) {
  requirePositiveDt(dt_s);
  if (!mean_heading_set_) {
    mean_heading_deg_ = state.heading_deg;
    mean_heading_set_ = true;
  }
  // Normalize memory to the reference period so behaviour is dt-invariant.
  const double steps = dt_s / params_.reference_dt_s;
  const double a = std::pow(params_.alpha, steps);
  const double noise_scale = std::sqrt(1.0 - a * a);

  std::normal_distribution<double> n{0.0, 1.0};
  state.speed_kmh = a * state.speed_kmh +
                    (1.0 - a) * params_.mean_speed_kmh +
                    noise_scale * params_.speed_sigma_kmh * n(rng);
  if (state.speed_kmh < 0.0) state.speed_kmh = 0.0;

  // Revert around the mean heading through the smallest angle difference.
  const double diff = normalizeAngleDeg(state.heading_deg - mean_heading_deg_);
  const double new_diff = a * diff + noise_scale * params_.heading_sigma_deg * n(rng);
  state.heading_deg = normalizeAngleDeg(mean_heading_deg_ + new_diff);

  advance(state, dt_s);
}

RandomWaypoint::RandomWaypoint(double area_radius_km, double pause_s)
    : area_radius_km_{area_radius_km}, pause_s_{pause_s} {
  if (!(area_radius_km_ > 0.0)) {
    throw std::invalid_argument("random waypoint radius must be > 0");
  }
  if (pause_s_ < 0.0) {
    throw std::invalid_argument("random waypoint pause must be >= 0");
  }
}

void RandomWaypoint::pickWaypoint(const MotionState& /*state*/,
                                  std::mt19937_64& rng) {
  // Uniform over the disc (sqrt radius transform).
  std::uniform_real_distribution<double> u{0.0, 1.0};
  const double r = area_radius_km_ * std::sqrt(u(rng));
  const double theta = 2.0 * cellular::kPi * u(rng);
  waypoint_ = {r * std::cos(theta), r * std::sin(theta)};
  has_waypoint_ = true;
}

void RandomWaypoint::step(MotionState& state, double dt_s,
                          std::mt19937_64& rng) {
  requirePositiveDt(dt_s);
  double remaining_s = dt_s;
  while (remaining_s > 0.0) {
    if (pause_remaining_s_ > 0.0) {
      const double wait = std::min(pause_remaining_s_, remaining_s);
      pause_remaining_s_ -= wait;
      remaining_s -= wait;
      continue;
    }
    if (!has_waypoint_) pickWaypoint(state, rng);

    const Vec2 to_wp = waypoint_ - state.position_km;
    const double dist = to_wp.norm();
    const double speed_kms = state.speed_kmh * kKmhToKms;
    if (speed_kms <= 0.0) return;  // parked user: nothing further to do

    state.heading_deg = cellular::bearingDeg(state.position_km, waypoint_);
    const double travel = speed_kms * remaining_s;
    if (travel < dist) {
      advance(state, remaining_s);
      return;
    }
    // Arrive at the waypoint, then pause and re-draw.
    state.position_km = waypoint_;
    remaining_s -= dist / speed_kms;
    pause_remaining_s_ = pause_s_;
    has_waypoint_ = false;
  }
}

}  // namespace facs::mobility
