#include "mobility/gps.hpp"

#include <cmath>
#include <stdexcept>

namespace facs::mobility {

using cellular::UserSnapshot;
using cellular::Vec2;

GpsSampler::GpsSampler(double horizontal_error_m)
    : horizontal_error_m_{horizontal_error_m} {
  if (horizontal_error_m_ < 0.0) {
    throw std::invalid_argument("GPS horizontal error must be >= 0");
  }
}

GpsFix GpsSampler::sample(double t_s, Vec2 true_position_km,
                          std::mt19937_64& rng) const {
  if (horizontal_error_m_ == 0.0) return {t_s, true_position_km};
  std::normal_distribution<double> noise{0.0, horizontal_error_m_ / 1000.0};
  return {t_s, {true_position_km.x + noise(rng), true_position_km.y + noise(rng)}};
}

GpsEstimator::GpsEstimator(std::size_t window) : window_{window} {
  if (window_ < 2) {
    throw std::invalid_argument("GPS estimator window must be >= 2");
  }
}

void GpsEstimator::addFix(const GpsFix& fix) {
  if (!fixes_.empty() && fix.t_s <= fixes_.back().t_s) {
    throw std::invalid_argument("GPS fixes must have increasing timestamps");
  }
  fixes_.push_back(fix);
  while (fixes_.size() > window_) fixes_.erase(fixes_.begin());
}

std::optional<MotionState> GpsEstimator::motion() const {
  if (!ready()) return std::nullopt;
  const GpsFix& oldest = fixes_.front();
  const GpsFix& newest = fixes_.back();
  const double dt_s = newest.t_s - oldest.t_s;
  const Vec2 displacement = newest.position_km - oldest.position_km;

  MotionState m;
  m.position_km = newest.position_km;
  m.speed_kmh = displacement.norm() / dt_s * 3600.0;
  m.heading_deg = (displacement.x == 0.0 && displacement.y == 0.0)
                      ? 0.0
                      : cellular::bearingDeg(oldest.position_km,
                                             newest.position_km);
  return m;
}

UserSnapshot GpsEstimator::snapshot(Vec2 station_position_km) const {
  const auto m = motion();
  if (!m) {
    throw std::logic_error("GPS estimator needs >= 2 fixes for a snapshot");
  }
  return snapshotFromTruth(*m, station_position_km);
}

UserSnapshot snapshotFromTruth(const MotionState& state,
                               Vec2 station_position_km) {
  UserSnapshot s;
  s.position = state.position_km;
  s.speed_kmh = state.speed_kmh;
  s.distance_km = state.position_km.distanceTo(station_position_km);
  s.angle_deg = cellular::headingDeviationDeg(
      state.heading_deg, state.position_km, station_position_km);
  return s;
}

}  // namespace facs::mobility
