#pragma once
/// \file flc2.hpp
/// FLC2 — the fuzzy *admission* controller (paper Section 3.2).
///
/// Inputs:  Cv (FLC1's correction value, [0, 1]), R (required bandwidth,
///          BU, [0, 10]), Cs (counter state = occupied BUs, [0, 40]).
/// Output:  A/R (accept/reject) in [-1, 1] with the soft term set
///          {Reject, Weak Reject, Not Reject Not Accept, Weak Accept,
///          Accept}.
///
/// Membership functions follow Fig. 6; the rule base is Table 2 verbatim
/// (27 rules = 3 x 3 x 3).

#include <array>

#include "fuzzy/engine.hpp"

namespace facs::core {

inline constexpr double kRequestMinBu = 0.0;
inline constexpr double kRequestMaxBu = 10.0;
inline constexpr double kCounterMinBu = 0.0;
inline constexpr double kCounterMaxBu = 40.0;
inline constexpr double kDecisionMin = -1.0;
inline constexpr double kDecisionMax = 1.0;

/// One row of Table 2, by term name.
struct Frb2Row {
  const char* cv;
  const char* r;
  const char* cs;
  const char* ar;
};

/// Table 2 verbatim (rules 0..26).
[[nodiscard]] const std::array<Frb2Row, 27>& frb2Table() noexcept;

/// Builds FLC2 with the paper's membership functions and rule base.
[[nodiscard]] fuzzy::MamdaniEngine buildFlc2(
    fuzzy::EngineConfig config = {});

}  // namespace facs::core
