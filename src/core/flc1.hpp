#pragma once
/// \file flc1.hpp
/// FLC1 — the fuzzy *prediction* controller (paper Section 3.1).
///
/// Inputs:  S (user speed, km/h), A (user angle, deg), D (distance, km).
/// Output:  Cv (correction value) in [0, 1]; higher = the user's trajectory
///          is more favourable / predictable for this base station.
///
/// Membership functions follow Fig. 5; the rule base is Table 1 verbatim
/// (42 rules = |T(S)| x |T(A)| x |T(D)| = 3 x 7 x 2).

#include <array>

#include "fuzzy/engine.hpp"

namespace facs::core {

/// Universe bounds from the paper's simulation section.
inline constexpr double kSpeedMinKmh = 0.0;
inline constexpr double kSpeedMaxKmh = 120.0;
inline constexpr double kAngleMinDeg = -180.0;
inline constexpr double kAngleMaxDeg = 180.0;
inline constexpr double kDistanceMinKm = 0.0;
inline constexpr double kDistanceMaxKm = 10.0;
inline constexpr double kCvMin = 0.0;
inline constexpr double kCvMax = 1.0;

/// One row of Table 1, by term name.
struct Frb1Row {
  const char* s;
  const char* a;
  const char* d;
  const char* cv;
};

/// Table 1 verbatim (rules 0..41). Exposed so tests can cross-check the
/// built engine against the paper row by row.
[[nodiscard]] const std::array<Frb1Row, 42>& frb1Table() noexcept;

/// Builds FLC1 with the paper's membership functions and rule base.
/// The returned engine is valid (checkValid() passes) and complete over
/// the input cartesian product.
[[nodiscard]] fuzzy::MamdaniEngine buildFlc1(
    fuzzy::EngineConfig config = {});

}  // namespace facs::core
