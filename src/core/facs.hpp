#pragma once
/// \file facs.hpp
/// FACS — the paper's Fuzzy Admission Control System (Fig. 4): the FLC1
/// prediction stage cascaded into the FLC2 admission stage, plus the
/// differentiated-service bookkeeping (Ds routing into the RTC / NRTC
/// counters, which the base-station ledger maintains).

#include <cstdint>
#include <span>
#include <string_view>

#include "cellular/admission.hpp"
#include "core/flc1.hpp"
#include "core/flc2.hpp"

namespace facs::core {

/// The paper's five-level soft admission decision (Section 3.2): "not only
/// 'accept' and 'reject' but also 'weak accept', 'weak reject', and 'not
/// accept not reject'".
enum class SoftDecision : std::uint8_t {
  Reject = 0,
  WeakReject = 1,
  NotRejectNotAccept = 2,
  WeakAccept = 3,
  Accept = 4,
};

[[nodiscard]] std::string_view toString(SoftDecision d) noexcept;

/// Tunables of the FACS controller.
struct FacsConfig {
  fuzzy::EngineConfig flc1;  ///< Operators of the prediction stage.
  fuzzy::EngineConfig flc2;  ///< Operators of the admission stage.

  /// A request is admitted iff the crisp A/R value exceeds this threshold.
  /// 0 is the neutral midpoint of the output universe (the centre of the
  /// "not reject not accept" term); swept by bench/ablation_design.
  double accept_threshold = 0.0;

  /// Future-work hook (paper Section 5: call priorities). The effective
  /// threshold is lowered by priority_bias * request.priority, so positive
  /// priorities make admission easier. Requests default to priority 0, so
  /// this has no effect unless a workload assigns priorities.
  double priority_bias = 0.1;

  /// Handoff prioritisation: lower the threshold for handoff requests by
  /// this amount (users are "much more sensitive to call dropping than to
  /// call blocking", Section 1). Disabled (0) by default to match the
  /// paper's single-threshold evaluation.
  double handoff_bias = 0.0;
};

/// Outcome of one full FACS evaluation (both stages).
struct FacsEvaluation {
  double cv = 0.0;        ///< FLC1 output: correction value in [0, 1].
  double ar = 0.0;        ///< FLC2 output: crisp A/R in [-1, 1].
  SoftDecision soft = SoftDecision::NotRejectNotAccept;
  bool accept = false;
};

/// One admission awaiting its FLC2 stage: the inputs are known (the Cv from
/// a precompute() or inline FLC1 run, the demand, and the ledger state at
/// the decision instant), the evaluation is filled in by evaluateBatch().
struct PendingDecision {
  double cv = 0.0;           ///< FLC1 output for this request.
  double demand_bu = 0.0;    ///< R: requested bandwidth.
  double occupied_bu = 0.0;  ///< Cs: occupied BUs at the decision instant.
  bool is_handoff = false;
  int priority = 0;
  FacsEvaluation eval{};     ///< Out: filled by evaluateBatch().
};

/// The complete admission system. Stateless between calls apart from the
/// immutable engines, so one instance may serve many cells concurrently.
class FacsController final : public cellular::AdmissionController {
 public:
  explicit FacsController(FacsConfig config = {});

  [[nodiscard]] std::string name() const override { return "FACS"; }

  /// Decisions read only the request (Cv, demand) and the target cell's
  /// counter state; the engines are immutable once sealed and inference
  /// scratch is per-thread. Group commit lanes may therefore run FLC2 for
  /// disjoint cells concurrently, bit-identically.
  [[nodiscard]] cellular::CommitScope commitScope() const noexcept override {
    return cellular::CommitScope::CellLocal;
  }

  /// Full two-stage evaluation from raw measurements. \p occupied_bu is the
  /// counter state Cs of the target base station.
  [[nodiscard]] FacsEvaluation evaluate(const cellular::UserSnapshot& user,
                                        double demand_bu, double occupied_bu,
                                        bool is_handoff = false,
                                        int priority = 0) const;

  /// Admission stage only, from an already-predicted Cv — what decide()
  /// runs when the caller precomputed FLC1 off the serialized path.
  /// Bit-identical to the snapshot overload fed the same Cv.
  [[nodiscard]] FacsEvaluation evaluate(double predicted_cv, double demand_bu,
                                        double occupied_bu,
                                        bool is_handoff = false,
                                        int priority = 0) const;

  /// Prediction stage only: Cv from (S, A, D).
  [[nodiscard]] double predictCv(const cellular::UserSnapshot& user) const;

  /// FLC1 as a request-time precompute: depends only on the snapshot, so
  /// the simulator runs it in the parallel prepare phase. Thread-safe (the
  /// engines are immutable and sealed; scratch state is per-thread).
  [[nodiscard]] cellular::PredictedCv precompute(
      const cellular::UserSnapshot& user) const override;

  /// Runs the FLC2 admission stage over every entry, in order. This is THE
  /// FLC2 execution path: decide() routes each decision through it as a
  /// batch of one, so the serialized commit phase always lands here. The
  /// rule-evaluation setup a decision used to pay — structural validation
  /// (sealed away at engine build) and inference-buffer allocation (a warm
  /// per-thread scratch) — is amortized across all decisions of a tick
  /// window whether they arrive as one span or as consecutive decide()
  /// calls, and the batch runs MamdaniEngine::inferBatch: aggregation
  /// iterates FLC2's sealed sample-grid tables and fuzzification of each
  /// input is memoized across consecutive entries whose crisp value is
  /// unchanged (Cs rarely moves between a window's decisions). Entries
  /// carry their own ledger state and are never reordered (each decision's
  /// occupancy input depends on its predecessors' outcomes); each result is
  /// bit-identical to a standalone evaluate().
  void evaluateBatch(std::span<PendingDecision> batch) const;

  /// Consumes context.predicted when valid (the precomputed FLC1 output);
  /// falls back to inline FLC1 inference otherwise. Same decision either
  /// way, bit for bit.
  [[nodiscard]] cellular::AdmissionDecision decide(
      const cellular::CallRequest& request,
      const cellular::AdmissionContext& context) override;

  /// Maps a crisp A/R value onto the paper's five-level soft decision
  /// (winning output term of FLC2).
  [[nodiscard]] SoftDecision classify(double ar) const;

  [[nodiscard]] const fuzzy::MamdaniEngine& flc1() const noexcept {
    return flc1_;
  }
  [[nodiscard]] const fuzzy::MamdaniEngine& flc2() const noexcept {
    return flc2_;
  }
  [[nodiscard]] const FacsConfig& config() const noexcept { return config_; }

 private:
  /// Threshold logic + soft classification around a crisp A/R value — the
  /// single back half both evaluate() and evaluateBatch() share.
  [[nodiscard]] FacsEvaluation finishEvaluation(double cv, double ar,
                                               bool is_handoff,
                                               int priority) const;

  FacsConfig config_;
  fuzzy::MamdaniEngine flc1_;
  fuzzy::MamdaniEngine flc2_;
};

}  // namespace facs::core
