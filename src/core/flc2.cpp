#include "core/flc2.hpp"

namespace facs::core {

using fuzzy::Interval;
using fuzzy::LinguisticVariable;
using fuzzy::makeTrapezoid;
using fuzzy::makeTriangle;
using fuzzy::MamdaniEngine;

const std::array<Frb2Row, 27>& frb2Table() noexcept {
  // Table 2 of the paper, rows 0-26.
  static const std::array<Frb2Row, 27> kTable{{
      {"B", "T", "S", "A"},     {"B", "T", "M", "NRNA"},
      {"B", "T", "F", "NRNA"},  {"B", "Vo", "S", "A"},
      {"B", "Vo", "M", "NRNA"}, {"B", "Vo", "F", "WR"},
      {"B", "Vi", "S", "WA"},   {"B", "Vi", "M", "NRNA"},
      {"B", "Vi", "F", "WR"},   {"N", "T", "S", "A"},
      {"N", "T", "M", "NRNA"},  {"N", "T", "F", "NRNA"},
      {"N", "Vo", "S", "A"},    {"N", "Vo", "M", "NRNA"},
      {"N", "Vo", "F", "NRNA"}, {"N", "Vi", "S", "WA"},
      {"N", "Vi", "M", "NRNA"}, {"N", "Vi", "F", "NRNA"},
      {"G", "T", "S", "A"},     {"G", "T", "M", "A"},
      {"G", "T", "F", "NRNA"},  {"G", "Vo", "S", "A"},
      {"G", "Vo", "M", "A"},    {"G", "Vo", "F", "WR"},
      {"G", "Vi", "S", "A"},    {"G", "Vi", "M", "A"},
      {"G", "Vi", "F", "R"},
  }};
  return kTable;
}

MamdaniEngine buildFlc2(fuzzy::EngineConfig config) {
  MamdaniEngine engine{"FLC2", config};

  // Cv — Fig. 6(a): Bad / Normal / Good over [0, 1].
  LinguisticVariable cv{"Cv", Interval{0.0, 1.0}};
  cv.addTerm("B", makeTriangle(0.0, 0.0, 0.5));
  cv.addTerm("N", makeTriangle(0.5, 0.5, 0.5));
  cv.addTerm("G", makeTriangle(1.0, 0.5, 0.0));

  // R — Fig. 6(b): Text / Voice / Video over [0, 10] BU.
  LinguisticVariable request{"R", Interval{kRequestMinBu, kRequestMaxBu}};
  request.addTerm("T", makeTriangle(0.0, 0.0, 5.0));
  request.addTerm("Vo", makeTriangle(5.0, 5.0, 5.0));
  request.addTerm("Vi", makeTriangle(10.0, 5.0, 0.0));

  // Cs — Fig. 6(c): Small / Middle / Full over [0, 40] BU.
  LinguisticVariable counter{"Cs", Interval{kCounterMinBu, kCounterMaxBu}};
  counter.addTerm("S", makeTriangle(0.0, 0.0, 20.0));
  counter.addTerm("M", makeTriangle(20.0, 20.0, 20.0));
  counter.addTerm("F", makeTriangle(40.0, 20.0, 0.0));

  // A/R — Fig. 6(d): five terms over [-1, 1]; R/A are the trapezoidal
  // shoulders, WR/NRNA/WA triangles at -0.5 / 0 / +0.5.
  LinguisticVariable decision{"AR", Interval{kDecisionMin, kDecisionMax}};
  decision.addTerm("R", makeTrapezoid(-1.0, -1.0, 0.0, 0.5));
  decision.addTerm("WR", makeTriangle(-0.5, 0.5, 0.5));
  decision.addTerm("NRNA", makeTriangle(0.0, 0.5, 0.5));
  decision.addTerm("WA", makeTriangle(0.5, 0.5, 0.5));
  decision.addTerm("A", makeTrapezoid(1.0, 1.0, 0.5, 0.0));

  engine.addInput(std::move(cv));
  engine.addInput(std::move(request));
  engine.addInput(std::move(counter));
  engine.setOutput(std::move(decision));

  for (const Frb2Row& row : frb2Table()) {
    engine.addRule({row.cv, row.r, row.cs}, row.ar);
  }
  engine.seal();  // validate once; every inference skips the re-check
  return engine;
}

}  // namespace facs::core
