#include "core/flc1.hpp"

namespace facs::core {

using fuzzy::Interval;
using fuzzy::LinguisticVariable;
using fuzzy::makeTrapezoid;
using fuzzy::makeTriangle;
using fuzzy::MamdaniEngine;

const std::array<Frb1Row, 42>& frb1Table() noexcept {
  // Table 1 of the paper, rows 0-41.
  static const std::array<Frb1Row, 42> kTable{{
      {"Sl", "B1", "N", "Cv3"}, {"Sl", "B1", "F", "Cv1"},
      {"Sl", "L1", "N", "Cv4"}, {"Sl", "L1", "F", "Cv2"},
      {"Sl", "L2", "N", "Cv5"}, {"Sl", "L2", "F", "Cv3"},
      {"Sl", "St", "N", "Cv9"}, {"Sl", "St", "F", "Cv3"},
      {"Sl", "R1", "N", "Cv5"}, {"Sl", "R1", "F", "Cv2"},
      {"Sl", "R2", "N", "Cv4"}, {"Sl", "R2", "F", "Cv2"},
      {"Sl", "B2", "N", "Cv3"}, {"Sl", "B2", "F", "Cv1"},
      {"M", "B1", "N", "Cv2"},  {"M", "B1", "F", "Cv1"},
      {"M", "L1", "N", "Cv4"},  {"M", "L1", "F", "Cv1"},
      {"M", "L2", "N", "Cv8"},  {"M", "L2", "F", "Cv5"},
      {"M", "St", "N", "Cv9"},  {"M", "St", "F", "Cv7"},
      {"M", "R1", "N", "Cv8"},  {"M", "R1", "F", "Cv5"},
      {"M", "R2", "N", "Cv4"},  {"M", "R2", "F", "Cv1"},
      {"M", "B2", "N", "Cv2"},  {"M", "B2", "F", "Cv1"},
      {"Fa", "B1", "N", "Cv1"}, {"Fa", "B1", "F", "Cv1"},
      {"Fa", "L1", "N", "Cv1"}, {"Fa", "L1", "F", "Cv2"},
      {"Fa", "L2", "N", "Cv6"}, {"Fa", "L2", "F", "Cv8"},
      {"Fa", "St", "N", "Cv9"}, {"Fa", "St", "F", "Cv9"},
      {"Fa", "R1", "N", "Cv6"}, {"Fa", "R1", "F", "Cv8"},
      {"Fa", "R2", "N", "Cv1"}, {"Fa", "R2", "F", "Cv2"},
      {"Fa", "B2", "N", "Cv1"}, {"Fa", "B2", "F", "Cv1"},
  }};
  return kTable;
}

MamdaniEngine buildFlc1(fuzzy::EngineConfig config) {
  MamdaniEngine engine{"FLC1", config};

  // S — user speed, Fig. 5(a): breakpoints 0, 15, 30, 60, 120 km/h.
  LinguisticVariable speed{"S", Interval{kSpeedMinKmh, kSpeedMaxKmh}};
  speed.addTerm("Sl", makeTrapezoid(0.0, 15.0, 0.0, 15.0));
  speed.addTerm("M", makeTriangle(30.0, 15.0, 30.0));
  speed.addTerm("Fa", makeTrapezoid(60.0, 120.0, 30.0, 0.0));

  // A — user angle, Fig. 5(b): breakpoints every 45 deg. 0 = straight at
  // the BS; L* = target off to the left of travel, R* = right; B* = back.
  LinguisticVariable angle{"A", Interval{kAngleMinDeg, kAngleMaxDeg}};
  angle.addTerm("B1", makeTrapezoid(-180.0, -135.0, 0.0, 45.0));
  angle.addTerm("L1", makeTriangle(-90.0, 45.0, 45.0));
  angle.addTerm("L2", makeTriangle(-45.0, 45.0, 45.0));
  angle.addTerm("St", makeTriangle(0.0, 45.0, 45.0));
  angle.addTerm("R1", makeTriangle(45.0, 45.0, 45.0));
  angle.addTerm("R2", makeTriangle(90.0, 45.0, 45.0));
  angle.addTerm("B2", makeTrapezoid(135.0, 180.0, 45.0, 0.0));

  // D — distance user <-> BS, Fig. 5(c): Near peaks at 0, Far at 10 km.
  LinguisticVariable distance{"D", Interval{kDistanceMinKm, kDistanceMaxKm}};
  distance.addTerm("N", makeTriangle(0.0, 0.0, 10.0));
  distance.addTerm("F", makeTriangle(10.0, 10.0, 0.0));

  // Cv — correction value, Fig. 5(d): nine evenly spaced terms over [0, 1];
  // Cv1/Cv9 are the paper's trapezoidal shoulders, Cv2..Cv8 triangles.
  LinguisticVariable cv{"Cv", Interval{kCvMin, kCvMax}};
  constexpr double kStep = 0.125;  // (1 - 0) / (9 - 1)
  cv.addTerm("Cv1", makeTrapezoid(0.0, 0.0, 0.0, kStep));
  for (int i = 2; i <= 8; ++i) {
    cv.addTerm("Cv" + std::to_string(i),
               makeTriangle(kStep * (i - 1), kStep, kStep));
  }
  cv.addTerm("Cv9", makeTrapezoid(1.0, 1.0, kStep, 0.0));

  engine.addInput(std::move(speed));
  engine.addInput(std::move(angle));
  engine.addInput(std::move(distance));
  engine.setOutput(std::move(cv));

  for (const Frb1Row& row : frb1Table()) {
    engine.addRule({row.s, row.a, row.d}, row.cv);
  }
  engine.seal();  // validate once; every inference skips the re-check
  return engine;
}

}  // namespace facs::core
