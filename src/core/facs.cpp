#include "core/facs.hpp"

#include <array>
#include <sstream>

namespace facs::core {

std::string_view toString(SoftDecision d) noexcept {
  switch (d) {
    case SoftDecision::Reject:
      return "reject";
    case SoftDecision::WeakReject:
      return "weak-reject";
    case SoftDecision::NotRejectNotAccept:
      return "not-reject-not-accept";
    case SoftDecision::WeakAccept:
      return "weak-accept";
    case SoftDecision::Accept:
      return "accept";
  }
  return "not-reject-not-accept";
}

FacsController::FacsController(FacsConfig config)
    : config_{config},
      flc1_{buildFlc1(config.flc1)},
      flc2_{buildFlc2(config.flc2)} {}

double FacsController::predictCv(const cellular::UserSnapshot& user) const {
  const std::array<double, 3> inputs{user.speed_kmh, user.angle_deg,
                                     user.distance_km};
  return flc1_.infer(inputs);
}

SoftDecision FacsController::classify(double ar) const {
  // Term order in FLC2's output variable matches the SoftDecision values.
  return static_cast<SoftDecision>(flc2_.output().winningTerm(ar));
}

FacsEvaluation FacsController::evaluate(const cellular::UserSnapshot& user,
                                        double demand_bu, double occupied_bu,
                                        bool is_handoff, int priority) const {
  FacsEvaluation eval;
  eval.cv = predictCv(user);
  const std::array<double, 3> inputs{eval.cv, demand_bu, occupied_bu};
  eval.ar = flc2_.infer(inputs);
  eval.soft = classify(eval.ar);

  double threshold = config_.accept_threshold;
  threshold -= config_.priority_bias * priority;
  if (is_handoff) threshold -= config_.handoff_bias;
  // Ties reject: a defuzzified A/R within numerical noise of the threshold
  // (e.g. a pure "not reject not accept" outcome against tau = 0) must not
  // flip on the sign of a 1e-18 rounding residue.
  constexpr double kDecisionEpsilon = 1e-9;
  eval.accept = eval.ar > threshold + kDecisionEpsilon;
  return eval;
}

cellular::AdmissionDecision FacsController::decide(
    const cellular::CallRequest& request,
    const cellular::AdmissionContext& context) {
  const FacsEvaluation eval = evaluate(
      request.snapshot, static_cast<double>(request.demand_bu),
      static_cast<double>(context.station.occupiedBu()), request.is_handoff,
      request.priority);

  // The fuzzy stages never see the hard ledger; enforce the capacity
  // invariant here so an "accept" is always allocatable.
  const bool fits = context.station.canFit(request.demand_bu);

  cellular::AdmissionDecision decision;
  decision.accept = eval.accept && fits;
  decision.score = eval.ar;
  std::ostringstream os;
  os << "cv=" << eval.cv << " ar=" << eval.ar << " soft=" << toString(eval.soft);
  if (eval.accept && !fits) os << " (no free BU)";
  decision.rationale = os.str();
  return decision;
}

}  // namespace facs::core
