#include "core/facs.hpp"

#include <array>

#include "cellular/policy_registry.hpp"

namespace facs::core {

std::string_view toString(SoftDecision d) noexcept {
  switch (d) {
    case SoftDecision::Reject:
      return "reject";
    case SoftDecision::WeakReject:
      return "weak-reject";
    case SoftDecision::NotRejectNotAccept:
      return "not-reject-not-accept";
    case SoftDecision::WeakAccept:
      return "weak-accept";
    case SoftDecision::Accept:
      return "accept";
  }
  // Out-of-range values (a corrupted decision) must not read like a
  // legitimate soft level in logs.
  return "invalid";
}

FacsController::FacsController(FacsConfig config)
    : config_{config},
      flc1_{buildFlc1(config.flc1)},
      flc2_{buildFlc2(config.flc2)} {}

double FacsController::predictCv(const cellular::UserSnapshot& user) const {
  const std::array<double, 3> inputs{user.speed_kmh, user.angle_deg,
                                     user.distance_km};
  return flc1_.infer(inputs);
}

SoftDecision FacsController::classify(double ar) const {
  // Term order in FLC2's output variable matches the SoftDecision values.
  return static_cast<SoftDecision>(flc2_.output().winningTerm(ar));
}

cellular::PredictedCv FacsController::precompute(
    const cellular::UserSnapshot& user) const {
  return {predictCv(user), true};
}

FacsEvaluation FacsController::finishEvaluation(double cv, double ar,
                                                bool is_handoff,
                                                int priority) const {
  FacsEvaluation eval;
  eval.cv = cv;
  eval.ar = ar;
  eval.soft = classify(ar);

  double threshold = config_.accept_threshold;
  threshold -= config_.priority_bias * priority;
  if (is_handoff) threshold -= config_.handoff_bias;
  // Ties reject: a defuzzified A/R within numerical noise of the threshold
  // (e.g. a pure "not reject not accept" outcome against tau = 0) must not
  // flip on the sign of a 1e-18 rounding residue.
  constexpr double kDecisionEpsilon = 1e-9;
  eval.accept = ar > threshold + kDecisionEpsilon;
  return eval;
}

FacsEvaluation FacsController::evaluate(double predicted_cv, double demand_bu,
                                        double occupied_bu, bool is_handoff,
                                        int priority) const {
  const std::array<double, 3> inputs{predicted_cv, demand_bu, occupied_bu};
  return finishEvaluation(predicted_cv, flc2_.infer(inputs), is_handoff,
                          priority);
}

FacsEvaluation FacsController::evaluate(const cellular::UserSnapshot& user,
                                        double demand_bu, double occupied_bu,
                                        bool is_handoff, int priority) const {
  return evaluate(predictCv(user), demand_bu, occupied_bu, is_handoff,
                  priority);
}

void FacsController::evaluateBatch(std::span<PendingDecision> batch) const {
  // In order: each entry carries the ledger state of its own decision
  // instant, so there is nothing to reorder. The span flattens into an
  // entry-major input array and runs through FLC2's batch kernel — sealed
  // sample-grid aggregation plus fuzzification memoized across consecutive
  // entries with an unchanged input. The scratch is per-thread and keyed to
  // the engine's seal id, so the memo also spans consecutive decide()
  // calls (a batch of one each) within a commit lane, and concurrent lanes
  // never share state.
  static thread_local fuzzy::BatchScratch scratch;
  static thread_local std::vector<double> inputs;
  static thread_local std::vector<double> outputs;
  inputs.clear();
  inputs.reserve(batch.size() * 3);
  for (const PendingDecision& pending : batch) {
    inputs.push_back(pending.cv);
    inputs.push_back(pending.demand_bu);
    inputs.push_back(pending.occupied_bu);
  }
  outputs.resize(batch.size());
  flc2_.inferBatch(inputs, outputs, scratch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].eval = finishEvaluation(batch[i].cv, outputs[i],
                                     batch[i].is_handoff, batch[i].priority);
  }
}

cellular::AdmissionDecision FacsController::decide(
    const cellular::CallRequest& request,
    const cellular::AdmissionContext& context) {
  // FLC1 ran at request time iff the caller precomputed it (the sharded
  // simulator's parallel prepare phase); otherwise run it inline. Same
  // function of the same snapshot, so the decision is identical either way.
  PendingDecision pending;
  pending.cv = context.predicted.valid ? context.predicted.cv
                                       : predictCv(request.snapshot);
  pending.demand_bu = static_cast<double>(request.demand_bu);
  pending.occupied_bu = static_cast<double>(context.station.occupiedBu());
  pending.is_handoff = request.is_handoff;
  pending.priority = request.priority;
  evaluateBatch({&pending, 1});
  const FacsEvaluation& eval = pending.eval;

  // The fuzzy stages never see the hard ledger; enforce the capacity
  // invariant here so an "accept" is always allocatable.
  const bool fits = context.station.canFit(request.demand_bu);

  cellular::AdmissionDecision decision;
  decision.accept = eval.accept && fits;
  decision.reason = decision.accept ? cellular::ReasonCode::Admitted
                    : eval.accept   ? cellular::ReasonCode::NoCapacity
                                    : cellular::ReasonCode::FuzzyReject;
  decision.score = eval.ar;
  if (context.explain) {
    const std::string_view soft = toString(eval.soft);
    decision.rationale.appendf("cv=%g ar=%g soft=%.*s", eval.cv, eval.ar,
                               static_cast<int>(soft.size()), soft.data());
    if (eval.accept && !fits) decision.rationale.appendf(" (no free BU)");
  }
  return decision;
}

// ------------------------------------------------------------------------
namespace {

using cellular::PolicyRegistrar;
using cellular::PolicySpec;
using cellular::PolicySpecError;

/// Operator-family shorthand used by the design ablations: `ops=minmax`
/// (the paper's min/max Mamdani), `ops=prod` (Larsen product/probor) or
/// `ops=luk` (Lukasiewicz conjunction).
void applyOperatorFamily(FacsConfig& cfg, const std::string& ops) {
  if (ops == "minmax") return;
  if (ops == "prod") {
    for (fuzzy::EngineConfig* e : {&cfg.flc1, &cfg.flc2}) {
      e->conjunction = fuzzy::TNorm::AlgebraicProduct;
      e->implication = fuzzy::TNorm::AlgebraicProduct;
      e->aggregation = fuzzy::SNorm::AlgebraicSum;
    }
    return;
  }
  if (ops == "luk") {
    cfg.flc1.conjunction = fuzzy::TNorm::BoundedDifference;
    cfg.flc2.conjunction = fuzzy::TNorm::BoundedDifference;
    return;
  }
  throw PolicySpecError("policy 'facs': unknown ops '" + ops +
                        "' (minmax|prod|luk)");
}

fuzzy::Defuzzifier parseDefuzzifier(const std::string& name) {
  if (name == "centroid") return fuzzy::Defuzzifier::Centroid;
  if (name == "bisector") return fuzzy::Defuzzifier::Bisector;
  if (name == "mom") return fuzzy::Defuzzifier::MeanOfMax;
  if (name == "som") return fuzzy::Defuzzifier::SmallestOfMax;
  if (name == "lom") return fuzzy::Defuzzifier::LargestOfMax;
  throw PolicySpecError("policy 'facs': unknown defuzzifier '" + name +
                        "' (centroid|bisector|mom|som|lom)");
}

const PolicyRegistrar register_facs{
    {"facs",
     "The paper's Fuzzy Admission Control System (FLC1 prediction cascaded "
     "into FLC2 admission).",
     "facs[:TAU][,tau=T,handoff=H,priority=P,ops=minmax|prod|luk,"
     "defuzz=centroid|bisector|mom|som|lom,res=N]"},
    [](const PolicySpec& spec) -> cellular::ControllerFactory {
      spec.expectOnly(1, {"tau", "handoff", "priority", "ops", "defuzz",
                          "res"});
      FacsConfig cfg;
      cfg.accept_threshold = spec.numberFor("tau", spec.numberAt(0, 0.0));
      cfg.handoff_bias = spec.numberFor("handoff", cfg.handoff_bias);
      cfg.priority_bias = spec.numberFor("priority", cfg.priority_bias);
      applyOperatorFamily(cfg, spec.keywordFor("ops", "minmax"));
      if (spec.hasKey("defuzz")) {
        const fuzzy::Defuzzifier d =
            parseDefuzzifier(spec.keywordFor("defuzz", "centroid"));
        cfg.flc1.defuzzifier = d;
        cfg.flc2.defuzzifier = d;
      }
      if (spec.hasKey("res")) {
        const int res = spec.intFor("res", 1001);
        if (res < 2) {
          throw PolicySpecError(
              "policy 'facs': defuzzification resolution must be >= 2");
        }
        cfg.flc1.resolution = res;
        cfg.flc2.resolution = res;
      }
      return [cfg](const cellular::HexNetwork&) {
        return std::make_unique<FacsController>(cfg);
      };
    }};

}  // namespace

}  // namespace facs::core
