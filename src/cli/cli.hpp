#pragma once
/// \file cli.hpp
/// Command-line front end for the simulator: parses `facs_cli` style
/// arguments into a SimulationConfig plus a policy spec, so operators can
/// run any scenario/policy combination without recompiling. Kept in the
/// library (rather than the tool's main.cpp) so the parsing logic is
/// unit-testable.
///
/// Policies are resolved through `cellular::PolicyRegistry` and scenarios
/// through `ScenarioCatalog`, so anything registered anywhere in the
/// process is immediately runnable from the command line.

#include <string>
#include <vector>

#include "sim/scenario_catalog.hpp"
#include "sim/simulator.hpp"

namespace facs::sim {

/// Fully parsed command line.
struct CliOptions {
  SimulationConfig config{};
  /// Registry policy spec, e.g. "facs", "guard:8", "facs:tau=0.25".
  std::string policy = "facs";
  /// Catalog scenario the config was based on ("" = paper defaults).
  std::string scenario;
  bool csv = false;
  bool help = false;
  bool list_policies = false;
  bool list_scenarios = false;
  /// When set, run a sweep over these request counts instead of one run.
  std::vector<int> sweep_xs;
  int replications = 5;
  /// Worker threads for sweeps (0 = one per hardware thread).
  int threads = 0;
};

/// Error with the offending argument attached.
class CliError : public std::runtime_error {
 public:
  explicit CliError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Parses argv (excluding argv[0]).
///
/// Supported flags:
///   --policy SPEC       --scenario NAME
///   --list-policies     --list-scenarios
///   --requests N        --window SECONDS       --seed N
///   --rings N           --cell-radius KM       --capacity BU
///   --speed MIN[:MAX]   --angle MEAN[:SIGMA]   --distance MIN[:MAX]
///   --tracking-window S --gps-error M          --no-gps
///   --poisson           --warmup S             --handoffs
///   --shards N          (worker shards; bit-identical at any count)
///   --guard-bu N        --facs-threshold T     (legacy spec shorthands)
///   --sweep X1,X2,...   --reps N               --threads N    --csv
///   --help
///
/// \throws CliError on unknown flags, missing values, malformed numbers,
///         unknown policies or unknown scenarios.
[[nodiscard]] CliOptions parseCli(const std::vector<std::string>& args);

/// Usage text for --help. Policy and scenario sections are generated from
/// the live registry/catalog.
[[nodiscard]] std::string cliUsage();

/// Builds the controller factory for \p options via the policy registry.
/// \throws CliError on a malformed or unknown policy spec.
[[nodiscard]] ControllerFactory makeFactory(const CliOptions& options);

}  // namespace facs::sim
