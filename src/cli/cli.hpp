#pragma once
/// \file cli.hpp
/// Command-line front end for the simulator: parses `facs_cli` style
/// arguments into a SimulationConfig plus a policy spec, so operators can
/// run any scenario/policy combination without recompiling. Kept in the
/// library (rather than the tool's main.cpp) so the parsing logic is
/// unit-testable.
///
/// Policies are resolved through the `cellular::PolicyRuntime` handed to
/// parseCli() (default: the shared default-seeded runtime) and scenarios
/// through a `ScenarioCatalog` instance, so anything an embedder registers
/// — registerExternal() policies, file-loaded scenarios — is immediately
/// runnable from the command line.

#include <string>
#include <vector>

#include "sim/scenario_catalog.hpp"
#include "sim/simulator.hpp"

namespace facs::sim {

/// Fully parsed command line.
struct CliOptions {
  SimulationConfig config{};
  /// Registry policy spec, e.g. "facs", "guard:8", "facs:tau=0.25".
  /// Defaults to the selected scenario's policy ("facs" without one).
  std::string policy = "facs";
  /// Scenario the config was based on ("" = paper defaults): a catalog
  /// name (--scenario) or the name parsed from --scenario-file.
  std::string scenario;
  /// Its one-line summary, kept so --dump-scenario can round-trip it.
  std::string scenario_summary;
  /// Path given to --scenario-file ("" = none).
  std::string scenario_file;
  /// Scenario named by --dump-scenario ("" = none): print its canonical
  /// scenario-file text and exit. "-" dumps the fully composed run
  /// (scenario base + flag overrides) instead of a catalog entry — the
  /// parse→write fixed point the CI round-trip gate checks, and a way to
  /// save a hand-tuned command line as a scenario file.
  std::string dump_scenario;
  bool explain = false;  ///< --explain: rationale-filled decisions.
  bool serve = false;    ///< --serve: stream one JSONL record per window.
  /// --metrics-every S: streaming emission period in simulated seconds
  /// (0 = a record at every engine barrier). Only meaningful with --serve.
  double metrics_every_s = 60.0;
  /// --serve-duration S: always-on mode — keep Poisson arrivals coming
  /// until this simulated instant, then drain (0 = batch workload).
  double serve_duration_s = 0.0;
  bool json = false;     ///< --json: metrics as diffable JSON.
  bool csv = false;
  bool help = false;
  bool list_policies = false;
  bool list_scenarios = false;
  /// When set, run a sweep over these request counts instead of one run.
  std::vector<int> sweep_xs;
  int replications = 5;
  /// Worker threads for sweeps (0 = one per hardware thread).
  int threads = 0;
};

/// Error with the offending argument attached.
class CliError : public std::runtime_error {
 public:
  explicit CliError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Parses argv (excluding argv[0]), resolving policies through \p runtime
/// and scenarios through \p catalog.
///
/// Supported flags:
///   --policy SPEC       --scenario NAME        --scenario-file PATH
///   --dump-scenario NAME
///   --list-policies     --list-scenarios
///   --requests N        --window SECONDS       --seed N
///   --rings N           --cell-radius KM       --capacity BU
///   --speed MIN[:MAX]   --angle MEAN[:SIGMA]   --distance MIN[:MAX]
///   --tracking-window S --gps-error M          --no-gps
///   --poisson           --warmup S             --handoffs
///   --shards N          (worker shards; bit-identical at any count)
///   --commit-groups N   (two-level commit lanes; 1 = serialized commit)
///   --serve             --metrics-every S      --serve-duration S
///   --explain           (rationales on; truncations counted + warned)
///   --guard-bu N        --facs-threshold T     (legacy spec shorthands)
///   --sweep X1,X2,...   --reps N               --threads N
///   --csv               --json                 --help
///
/// \throws CliError on unknown flags, missing values, malformed numbers,
///         unknown policies, unknown scenarios or unreadable/malformed
///         scenario files (scenario-file messages carry file + line).
[[nodiscard]] CliOptions parseCli(const std::vector<std::string>& args,
                                  const cellular::PolicyRuntime& runtime,
                                  const ScenarioCatalog& catalog);

/// parseCli() against the shared default runtime and the built-in catalog.
[[nodiscard]] CliOptions parseCli(const std::vector<std::string>& args);

/// Usage text for --help. Policy and scenario sections are generated from
/// the live runtime/catalog.
[[nodiscard]] std::string cliUsage(const cellular::PolicyRuntime& runtime,
                                   const ScenarioCatalog& catalog);
[[nodiscard]] std::string cliUsage();

/// Builds the controller factory for \p options via \p runtime.
/// \throws CliError on a malformed or unknown policy spec.
[[nodiscard]] ControllerFactory makeFactory(
    const CliOptions& options, const cellular::PolicyRuntime& runtime);
[[nodiscard]] ControllerFactory makeFactory(const CliOptions& options);

}  // namespace facs::sim
