#pragma once
/// \file cli.hpp
/// Command-line front end for the simulator: parses `facs_cli` style
/// arguments into a SimulationConfig plus a policy selection, so operators
/// can run any scenario/policy combination without recompiling. Kept in
/// the library (rather than the tool's main.cpp) so the parsing logic is
/// unit-testable.

#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace facs::sim {

/// Which admission policy the run should use.
enum class PolicyChoice {
  Facs,
  Scc,
  CompleteSharing,
  GuardChannel,
  MultiThreshold,
};

[[nodiscard]] std::string_view toString(PolicyChoice p) noexcept;

/// Fully parsed command line.
struct CliOptions {
  SimulationConfig config{};
  PolicyChoice policy = PolicyChoice::Facs;
  cellular::BandwidthUnits guard_bu = 8;  ///< For --policy guard.
  double facs_threshold = 0.0;            ///< For --policy facs.
  bool csv = false;
  bool help = false;
  /// When set, run a sweep over these request counts instead of one run.
  std::vector<int> sweep_xs;
  int replications = 5;
};

/// Error with the offending argument attached.
class CliError : public std::runtime_error {
 public:
  explicit CliError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Parses argv (excluding argv[0]).
///
/// Supported flags:
///   --policy facs|scc|cs|guard|threshold
///   --requests N        --window SECONDS       --seed N
///   --rings N           --cell-radius KM       --capacity BU
///   --speed MIN[:MAX]   --angle MEAN[:SIGMA]   --distance MIN[:MAX]
///   --tracking-window S --gps-error M          --no-gps
///   --poisson           --warmup S             --handoffs
///   --guard-bu N        --facs-threshold T
///   --sweep X1,X2,...   --reps N               --csv
///   --help
///
/// \throws CliError on unknown flags, missing values or malformed numbers.
[[nodiscard]] CliOptions parseCli(const std::vector<std::string>& args);

/// Usage text for --help.
[[nodiscard]] std::string cliUsage();

/// Builds the controller factory selected by \p options.
[[nodiscard]] ControllerFactory makeFactory(const CliOptions& options);

}  // namespace facs::sim
