#include "cli/cli.hpp"

#include <sstream>

#include "cac/baselines.hpp"
#include "core/facs.hpp"
#include "scc/shadow_cluster.hpp"

namespace facs::sim {

std::string_view toString(PolicyChoice p) noexcept {
  switch (p) {
    case PolicyChoice::Facs:
      return "facs";
    case PolicyChoice::Scc:
      return "scc";
    case PolicyChoice::CompleteSharing:
      return "cs";
    case PolicyChoice::GuardChannel:
      return "guard";
    case PolicyChoice::MultiThreshold:
      return "threshold";
  }
  return "facs";
}

namespace {

double parseDouble(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw CliError("flag " + flag + ": expected a number, got '" + value + "'");
  }
}

int parseInt(const std::string& value, const std::string& flag) {
  const double v = parseDouble(value, flag);
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v) {
    throw CliError("flag " + flag + ": expected an integer, got '" + value +
                   "'");
  }
  return i;
}

/// "lo[:hi]" -> (lo, hi); a single value means lo == hi.
std::pair<double, double> parseRange(const std::string& value,
                                     const std::string& flag) {
  const std::size_t colon = value.find(':');
  if (colon == std::string::npos) {
    const double v = parseDouble(value, flag);
    return {v, v};
  }
  return {parseDouble(value.substr(0, colon), flag),
          parseDouble(value.substr(colon + 1), flag)};
}

std::vector<int> parseIntList(const std::string& value,
                              const std::string& flag) {
  std::vector<int> out;
  std::stringstream ss{value};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(parseInt(item, flag));
  }
  if (out.empty()) throw CliError("flag " + flag + ": empty list");
  return out;
}

PolicyChoice parsePolicy(const std::string& value) {
  if (value == "facs") return PolicyChoice::Facs;
  if (value == "scc") return PolicyChoice::Scc;
  if (value == "cs") return PolicyChoice::CompleteSharing;
  if (value == "guard") return PolicyChoice::GuardChannel;
  if (value == "threshold") return PolicyChoice::MultiThreshold;
  throw CliError("unknown policy '" + value +
                 "' (facs|scc|cs|guard|threshold)");
}

}  // namespace

CliOptions parseCli(const std::vector<std::string>& args) {
  CliOptions opt;
  std::size_t i = 0;
  const auto next = [&](const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) throw CliError("flag " + flag + ": missing value");
    return args[++i];
  };

  for (; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      opt.help = true;
    } else if (a == "--policy") {
      opt.policy = parsePolicy(next(a));
    } else if (a == "--requests") {
      opt.config.total_requests = parseInt(next(a), a);
    } else if (a == "--window") {
      opt.config.arrival_window_s = parseDouble(next(a), a);
    } else if (a == "--seed") {
      opt.config.seed = static_cast<std::uint64_t>(parseInt(next(a), a));
    } else if (a == "--rings") {
      opt.config.rings = parseInt(next(a), a);
    } else if (a == "--cell-radius") {
      opt.config.cell_radius_km = parseDouble(next(a), a);
    } else if (a == "--capacity") {
      opt.config.capacity_bu = parseInt(next(a), a);
    } else if (a == "--speed") {
      const auto [lo, hi] = parseRange(next(a), a);
      opt.config.scenario.speed_min_kmh = lo;
      opt.config.scenario.speed_max_kmh = hi;
    } else if (a == "--angle") {
      const auto [mean, sigma] = parseRange(next(a), a);
      opt.config.scenario.angle_mean_deg = mean;
      opt.config.scenario.angle_sigma_deg =
          sigma == mean ? 0.0 : sigma;  // single value = exact angle
    } else if (a == "--distance") {
      const auto [lo, hi] = parseRange(next(a), a);
      opt.config.scenario.distance_min_km = lo;
      opt.config.scenario.distance_max_km = hi;
    } else if (a == "--tracking-window") {
      opt.config.scenario.tracking_window_s = parseDouble(next(a), a);
    } else if (a == "--gps-error") {
      opt.config.scenario.gps_error_m = parseDouble(next(a), a);
    } else if (a == "--no-gps") {
      opt.config.scenario.gps_error_m.reset();
    } else if (a == "--poisson") {
      opt.config.arrivals = ArrivalProcess::Poisson;
    } else if (a == "--warmup") {
      opt.config.warmup_s = parseDouble(next(a), a);
    } else if (a == "--handoffs") {
      opt.config.enable_handoffs = true;
    } else if (a == "--guard-bu") {
      opt.guard_bu = parseInt(next(a), a);
    } else if (a == "--facs-threshold") {
      opt.facs_threshold = parseDouble(next(a), a);
    } else if (a == "--sweep") {
      opt.sweep_xs = parseIntList(next(a), a);
    } else if (a == "--reps") {
      opt.replications = parseInt(next(a), a);
    } else if (a == "--csv") {
      opt.csv = true;
    } else {
      throw CliError("unknown flag '" + a + "' (try --help)");
    }
  }
  return opt;
}

std::string cliUsage() {
  return R"(facs_cli - run FACS / baseline call-admission simulations

usage: facs_cli [flags]

policy:
  --policy facs|scc|cs|guard|threshold   admission policy (default facs)
  --guard-bu N          guard channels for --policy guard (default 8)
  --facs-threshold T    FACS acceptance threshold tau (default 0)

workload:
  --requests N          requesting connections (default 50)
  --window S            arrival window seconds (default 600)
  --poisson             Poisson arrivals instead of a uniform burst
  --warmup S            exclude the first S seconds from metrics
  --speed LO[:HI]       user speed km/h (default 0:120)
  --angle MEAN[:SIGMA]  heading deviation deg; single value = exact
  --distance LO[:HI]    distance to BS km (default 0:10)
  --tracking-window S   GPS observation before the decision (default 30)
  --gps-error M         GPS 1-sigma error metres (default 10)
  --no-gps              noiseless ground-truth snapshots

network:
  --rings N             hex rings around the centre cell (default 0)
  --cell-radius KM      hex circumradius (default 10)
  --capacity BU         per-cell bandwidth units (default 40)
  --handoffs            move users between cells while in call

run:
  --seed N              RNG seed (default 1)
  --sweep X1,X2,...     sweep total_requests and print a table
  --reps N              replications per sweep point (default 5)
  --csv                 CSV output for sweeps
)";
}

ControllerFactory makeFactory(const CliOptions& options) {
  switch (options.policy) {
    case PolicyChoice::Facs: {
      core::FacsConfig cfg;
      cfg.accept_threshold = options.facs_threshold;
      return [cfg](const cellular::HexNetwork&) {
        return std::make_unique<core::FacsController>(cfg);
      };
    }
    case PolicyChoice::Scc:
      return [](const cellular::HexNetwork& net) {
        return std::make_unique<scc::ShadowClusterController>(net);
      };
    case PolicyChoice::CompleteSharing:
      return [](const cellular::HexNetwork&) {
        return std::make_unique<cac::CompleteSharingController>();
      };
    case PolicyChoice::GuardChannel: {
      const cellular::BandwidthUnits guard = options.guard_bu;
      return [guard](const cellular::HexNetwork&) {
        return std::make_unique<cac::GuardChannelController>(guard);
      };
    }
    case PolicyChoice::MultiThreshold:
      return [](const cellular::HexNetwork&) {
        return std::make_unique<cac::MultiThresholdController>(
            std::array<cellular::BandwidthUnits, 3>{38, 30, 20});
      };
  }
  throw CliError("unhandled policy");
}

}  // namespace facs::sim
