#include "cli/cli.hpp"

#include <optional>
#include <sstream>

#include "cellular/policy_registry.hpp"
#include "sim/scenario_file.hpp"

namespace facs::sim {

namespace {

double parseDouble(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw CliError("flag " + flag + ": expected a number, got '" + value + "'");
  }
}

int parseInt(const std::string& value, const std::string& flag) {
  const double v = parseDouble(value, flag);
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v) {
    throw CliError("flag " + flag + ": expected an integer, got '" + value +
                   "'");
  }
  return i;
}

/// "lo[:hi]" -> (lo, hi); a single value means lo == hi.
std::pair<double, double> parseRange(const std::string& value,
                                     const std::string& flag) {
  const std::size_t colon = value.find(':');
  if (colon == std::string::npos) {
    const double v = parseDouble(value, flag);
    return {v, v};
  }
  return {parseDouble(value.substr(0, colon), flag),
          parseDouble(value.substr(colon + 1), flag)};
}

std::vector<int> parseIntList(const std::string& value,
                              const std::string& flag) {
  std::vector<int> out;
  std::stringstream ss{value};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(parseInt(item, flag));
  }
  if (out.empty()) throw CliError("flag " + flag + ": empty list");
  return out;
}

/// Validates a policy spec against the runtime at parse time, so a typo
/// fails before any simulation starts.
std::string parsePolicySpec(const cellular::PolicyRuntime& runtime,
                            const std::string& value) {
  try {
    (void)runtime.makeFactory(value);
  } catch (const cellular::PolicySpecError& e) {
    throw CliError(e.what());
  }
  return value;
}

}  // namespace

CliOptions parseCli(const std::vector<std::string>& args,
                    const cellular::PolicyRuntime& runtime,
                    const ScenarioCatalog& catalog) {
  CliOptions opt;
  std::size_t i = 0;
  const auto next = [&](const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) throw CliError("flag " + flag + ": missing value");
    return args[++i];
  };

  // The scenario — catalogued name or file — is the base the other flags
  // override, so resolve it first regardless of where it appears on the
  // command line. Every occurrence is validated; the last one wins. A
  // scenario also carries its default policy, which an explicit --policy
  // (handled below) overrides.
  for (std::size_t j = 0; j + 1 < args.size(); ++j) {
    if (args[j] == "--scenario") {
      try {
        const ScenarioSpec& spec = catalog.at(args[j + 1]);
        opt.scenario = spec.name;
        opt.scenario_summary = spec.summary;
        opt.scenario_file.clear();
        opt.config = spec.config;
        opt.policy = spec.policy;
      } catch (const ScenarioError& e) {
        throw CliError(e.what());
      }
    } else if (args[j] == "--scenario-file") {
      try {
        const ScenarioSpec spec = loadScenarioFile(args[j + 1], runtime);
        opt.scenario = spec.name;
        opt.scenario_summary = spec.summary;
        opt.scenario_file = args[j + 1];
        opt.config = spec.config;
        opt.policy = spec.policy;
      } catch (const ScenarioFileError& e) {
        throw CliError(e.what());
      }
    }
  }

  // Legacy shorthands, folded into the policy spec after the loop.
  std::optional<int> guard_bu;
  std::optional<double> facs_threshold;

  for (; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      opt.help = true;
    } else if (a == "--list-policies") {
      opt.list_policies = true;
    } else if (a == "--list-scenarios") {
      opt.list_scenarios = true;
    } else if (a == "--policy") {
      opt.policy = parsePolicySpec(runtime, next(a));
    } else if (a == "--scenario" || a == "--scenario-file") {
      (void)next(a);  // already applied above
    } else if (a == "--dump-scenario") {
      opt.dump_scenario = next(a);
      if (opt.dump_scenario != "-") {  // "-" = the composed run itself
        try {
          (void)catalog.at(opt.dump_scenario);  // throws with known names
        } catch (const ScenarioError& e) {
          throw CliError(e.what());
        }
      }
    } else if (a == "--explain") {
      opt.explain = true;
      opt.config.explain = true;
    } else if (a == "--json") {
      opt.json = true;
    } else if (a == "--requests") {
      opt.config.total_requests = parseInt(next(a), a);
    } else if (a == "--window") {
      opt.config.arrival_window_s = parseDouble(next(a), a);
    } else if (a == "--seed") {
      opt.config.seed = static_cast<std::uint64_t>(parseInt(next(a), a));
    } else if (a == "--rings") {
      opt.config.rings = parseInt(next(a), a);
    } else if (a == "--cell-radius") {
      opt.config.cell_radius_km = parseDouble(next(a), a);
    } else if (a == "--capacity") {
      opt.config.capacity_bu = parseInt(next(a), a);
    } else if (a == "--speed") {
      const auto [lo, hi] = parseRange(next(a), a);
      opt.config.scenario.speed_min_kmh = lo;
      opt.config.scenario.speed_max_kmh = hi;
    } else if (a == "--angle") {
      const auto [mean, sigma] = parseRange(next(a), a);
      opt.config.scenario.angle_mean_deg = mean;
      opt.config.scenario.angle_sigma_deg =
          sigma == mean ? 0.0 : sigma;  // single value = exact angle
    } else if (a == "--distance") {
      const auto [lo, hi] = parseRange(next(a), a);
      opt.config.scenario.distance_min_km = lo;
      opt.config.scenario.distance_max_km = hi;
    } else if (a == "--tracking-window") {
      opt.config.scenario.tracking_window_s = parseDouble(next(a), a);
    } else if (a == "--gps-error") {
      opt.config.scenario.gps_error_m = parseDouble(next(a), a);
    } else if (a == "--no-gps") {
      opt.config.scenario.gps_error_m.reset();
    } else if (a == "--poisson") {
      opt.config.arrivals = ArrivalProcess::Poisson;
    } else if (a == "--warmup") {
      opt.config.warmup_s = parseDouble(next(a), a);
    } else if (a == "--handoffs") {
      opt.config.enable_handoffs = true;
    } else if (a == "--shards") {
      const int shards = parseInt(next(a), a);
      if (shards < 1 || shards > kMaxShards) {
        throw CliError("flag --shards: must be in [1, " +
                       std::to_string(kMaxShards) + "], got " +
                       std::to_string(shards));
      }
      opt.config.shards = shards;
    } else if (a == "--commit-groups") {
      const int groups = parseInt(next(a), a);
      if (groups < 1 || groups > kMaxShards) {
        throw CliError("flag --commit-groups: must be in [1, " +
                       std::to_string(kMaxShards) + "], got " +
                       std::to_string(groups));
      }
      opt.config.commit_groups = groups;
    } else if (a == "--partition") {
      const std::string kind = next(a);
      if (kind == "contiguous") {
        opt.config.partition = PartitionStrategy::Contiguous;
      } else if (kind == "weighted") {
        opt.config.partition = PartitionStrategy::Weighted;
      } else {
        throw CliError("flag --partition: must be 'contiguous' or "
                       "'weighted', got '" +
                       kind + "'");
      }
    } else if (a == "--repartition-every") {
      opt.config.repartition_every_s = parseDouble(next(a), a);
      if (opt.config.repartition_every_s < 0.0) {
        throw CliError("flag --repartition-every: must be >= 0, got " +
                       std::to_string(opt.config.repartition_every_s));
      }
    } else if (a == "--serve") {
      opt.serve = true;
    } else if (a == "--metrics-every") {
      opt.metrics_every_s = parseDouble(next(a), a);
      if (opt.metrics_every_s < 0.0) {
        throw CliError("flag --metrics-every: must be >= 0, got " +
                       std::to_string(opt.metrics_every_s));
      }
    } else if (a == "--serve-duration") {
      opt.serve_duration_s = parseDouble(next(a), a);
      if (opt.serve_duration_s < 0.0) {
        throw CliError("flag --serve-duration: must be >= 0, got " +
                       std::to_string(opt.serve_duration_s));
      }
      opt.serve = true;  // a duration only makes sense when streaming
    } else if (a == "--no-precompute") {
      opt.config.precompute_cv = false;
    } else if (a == "--guard-bu") {
      guard_bu = parseInt(next(a), a);
    } else if (a == "--facs-threshold") {
      facs_threshold = parseDouble(next(a), a);
    } else if (a == "--sweep") {
      opt.sweep_xs = parseIntList(next(a), a);
    } else if (a == "--reps") {
      opt.replications = parseInt(next(a), a);
    } else if (a == "--threads") {
      opt.threads = parseInt(next(a), a);
    } else if (a == "--csv") {
      opt.csv = true;
    } else {
      throw CliError("unknown flag '" + a + "' (try --help)");
    }
  }

  // Legacy shorthands: `--policy guard --guard-bu 12` means `guard:12`,
  // `--policy facs --facs-threshold 0.25` means `facs:0.25`. They only
  // apply to a bare spec — an explicit parameterized spec wins.
  if (guard_bu && opt.policy == "guard") {
    opt.policy = parsePolicySpec(runtime, "guard:" + std::to_string(*guard_bu));
  }
  if (facs_threshold && opt.policy == "facs") {
    std::ostringstream os;
    os << "facs:tau=" << *facs_threshold;
    opt.policy = parsePolicySpec(runtime, os.str());
  }
  return opt;
}

CliOptions parseCli(const std::vector<std::string>& args) {
  return parseCli(args, cellular::PolicyRuntime::defaultRuntime(),
                  ScenarioCatalog::builtins());
}

std::string cliUsage(const cellular::PolicyRuntime& runtime,
                     const ScenarioCatalog& catalog) {
  std::ostringstream os;
  os << R"(facs_cli - run FACS / baseline call-admission simulations

usage: facs_cli [flags]

policy (--policy SPEC, default from the scenario, else "facs"):
  A spec is a registered policy name plus optional inline parameters:
  "facs", "guard:8", "threshold:38,30,20", "facs:tau=0.25,ops=prod".
  Registered policies:
)" << runtime.describeAll()
     << R"(  --guard-bu N          legacy shorthand for --policy guard:N
  --facs-threshold T    legacy shorthand for --policy facs:tau=T
  --list-policies       print the policy registry and exit

scenario (--scenario NAME or --scenario-file PATH overrides the defaults
below, then flags override the scenario):
)" << catalog.describeAll()
     << R"(  --scenario-file PATH  run a scenario file (see --dump-scenario
                        for the format; README "Scenario files")
  --dump-scenario NAME  print a scenario as a scenario file and exit;
                        NAME "-" dumps the composed run (base + flags)
  --list-scenarios      print the scenario catalog and exit

workload:
  --requests N          requesting connections (default 50)
  --window S            arrival window seconds (default 600)
  --poisson             Poisson arrivals instead of a uniform burst
  --warmup S            exclude the first S seconds from metrics
  --speed LO[:HI]       user speed km/h (default 0:120)
  --angle MEAN[:SIGMA]  heading deviation deg; single value = exact
  --distance LO[:HI]    distance to BS km (default 0:10)
  --tracking-window S   GPS observation before the decision (default 30)
  --gps-error M         GPS 1-sigma error metres (default 10)
  --no-gps              noiseless ground-truth snapshots

network:
  --rings N             hex rings around the centre cell (default 0)
  --cell-radius KM      hex circumradius (default 10)
  --capacity BU         per-cell bandwidth units (default 40)
  --handoffs            move users between cells while in call

run:
  --seed N              RNG seed (default 1)
  --shards N            worker shards for one run (default from scenario;
                        results are bit-identical at any shard count)
  --commit-groups N     commit lanes for the two-level commit (default 1 =
                        one serialized commit phase, bit-identical to the
                        ungrouped engine; N>1 needs a cell-local policy
                        and changes cross-group visibility — see README
                        "Commit groups & reservations"; deterministic at
                        any shard count)
  --partition NAME      cell-to-lane mapping for commit groups:
                        'contiguous' (default; near-equal-size id ranges,
                        bit-identical to the historical engine) or
                        'weighted' (near-equal spawn-weight ranges —
                        arrival_scale x mean mix demand — so hotspot
                        cells stop overloading one lane; seed-stable and
                        shard-invariant)
  --repartition-every S weighted partition only: re-draw the group
                        boundaries every S simulated seconds from the
                        observed per-cell committed-event counts (0 =
                        never; deterministic — epochs land on barriers)
  --no-precompute       keep snapshot-only policy work (FACS FLC1) on the
                        serialized commit path (results are bit-identical;
                        only the phase profile moves)
  --explain             decide with rationales on (identical decisions;
                        truncated rationales are counted and warned about)
  --serve               streaming service mode: one JSON Lines record per
                        metrics window on stdout (window deltas, cumulative
                        state, call-pool / ring-buffer stats), final line
                        carries the batch-identical totals — see README
                        "Streaming service mode"
  --metrics-every S     streaming emission period, simulated seconds
                        (default 60; 0 = a record at every barrier)
  --serve-duration S    always-on mode: keep Poisson arrivals running
                        until simulated time S, then drain (implies
                        --serve; requires --poisson)
  --sweep X1,X2,...     sweep total_requests and print a table
  --reps N              replications per sweep point (default 5)
  --threads N           sweep worker threads (default: hardware); sweeps
                        budget threads*shards against the machine
  --csv                 CSV output for sweeps
  --json                metrics as JSON; with --sweep, one document with a
                        full metrics object per (curve, x, replication) so
                        CI can diff whole figures (diffable — the CI
                        round-trip gate compares these byte for byte)
)";
  return os.str();
}

std::string cliUsage() {
  return cliUsage(cellular::PolicyRuntime::defaultRuntime(),
                  ScenarioCatalog::builtins());
}

ControllerFactory makeFactory(const CliOptions& options,
                              const cellular::PolicyRuntime& runtime) {
  try {
    return runtime.makeFactory(options.policy);
  } catch (const cellular::PolicySpecError& e) {
    throw CliError(e.what());
  }
}

ControllerFactory makeFactory(const CliOptions& options) {
  return makeFactory(options, cellular::PolicyRuntime::defaultRuntime());
}

}  // namespace facs::sim
